// Deterministic random-number generation for the simulation.
//
// Every stochastic component takes an Rng (or a seed) explicitly; there is no
// global generator. Substreams are derived with fork(), so adding a new
// consumer of randomness never perturbs the draws of existing ones — a
// property the reproduction benches rely on (same seed => same figure).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace bgpcmp {

/// Deterministic RNG with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream keyed by a label, without advancing
  /// this stream. Same (seed, label) always yields the same child.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// The seed this stream was constructed from.
  [[nodiscard]] std::uint64_t base_seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Exponential with given mean (not rate).
  double exponential(double mean);
  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed volumes).
  double pareto(double x_m, double alpha);

  /// Pick a uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Pick an index with probability proportional to weights[i]. Weights must
  /// be non-negative with a positive sum.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

/// Zipf sampler over ranks 1..n with exponent s, via precomputed CDF and
/// binary search. Used for traffic volume across client prefixes ("a small
/// number of prefixes carry most bytes").
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Sample a 0-based rank (0 is the most popular).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of 0-based rank r.
  [[nodiscard]] double pmf(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace bgpcmp
