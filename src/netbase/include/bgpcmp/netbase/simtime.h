// Simulation time: instants, windows, and the 15-minute aggregation grid the
// paper's PoP study uses ("within each 15 minute window, we group the
// measurements by <PoP, prefix, route>").
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace bgpcmp {

/// An instant in simulation time, counted in seconds from the start of the
/// experiment. Integer seconds are plenty for routing-timescale phenomena.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) : seconds_(seconds) {}

  static constexpr SimTime hours(double h) {
    return SimTime{static_cast<std::int64_t>(h * 3600.0)};
  }
  static constexpr SimTime days(double d) { return hours(d * 24.0); }
  static constexpr SimTime minutes(double m) {
    return SimTime{static_cast<std::int64_t>(m * 60.0)};
  }

  [[nodiscard]] constexpr std::int64_t seconds() const { return seconds_; }
  [[nodiscard]] constexpr double hours_f() const { return seconds_ / 3600.0; }
  /// Hour-of-day in [0, 24), used by the diurnal congestion model.
  [[nodiscard]] double hour_of_day() const;

  constexpr SimTime operator+(SimTime o) const { return SimTime{seconds_ + o.seconds_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{seconds_ - o.seconds_}; }
  constexpr auto operator<=>(const SimTime&) const = default;

  [[nodiscard]] std::string str() const;

 private:
  std::int64_t seconds_ = 0;
};

/// A half-open time window [begin, end).
struct TimeWindow {
  SimTime begin;
  SimTime end;

  [[nodiscard]] constexpr bool contains(SimTime t) const {
    return begin <= t && t < end;
  }
  [[nodiscard]] constexpr SimTime midpoint() const {
    return SimTime{(begin.seconds() + end.seconds()) / 2};
  }
  constexpr auto operator<=>(const TimeWindow&) const = default;
};

/// Slice [start, start+duration) into consecutive windows of `width`.
/// The final window is truncated if duration is not a multiple of width.
[[nodiscard]] std::vector<TimeWindow> make_windows(SimTime start, SimTime duration,
                                                   SimTime width);

/// The paper's 15-minute aggregation grid over `days` days.
[[nodiscard]] std::vector<TimeWindow> fifteen_minute_grid(double days);

}  // namespace bgpcmp
