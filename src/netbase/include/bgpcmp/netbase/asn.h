// Strongly typed Autonomous System numbers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace bgpcmp {

/// An Autonomous System number. A distinct type (not a bare integer) so AS
/// identifiers cannot be confused with indices, prefixes, or counts.
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  constexpr auto operator<=>(const Asn&) const = default;

  [[nodiscard]] std::string str() const { return "AS" + std::to_string(value_); }

 private:
  std::uint32_t value_ = 0;  ///< 0 is reserved and means "no AS".
};

}  // namespace bgpcmp

template <>
struct std::hash<bgpcmp::Asn> {
  std::size_t operator()(const bgpcmp::Asn& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
