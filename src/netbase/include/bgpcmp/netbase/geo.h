// Geographic primitives: coordinates, great-circle distance, and the
// fiber-propagation latency floor.
//
// The paper's central empirical claim is that latency on today's Internet is
// dominated by geography — BGP's alternatives usually traverse nearly the
// same geographic path, so they perform alike. This module is therefore the
// bedrock of the whole simulation: every latency in the system bottoms out in
// haversine distance times the speed of light in fiber.
#pragma once

#include <compare>

#include "bgpcmp/netbase/units.h"

namespace bgpcmp {

/// A point on the Earth's surface (degrees).
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  constexpr auto operator<=>(const GeoPoint&) const = default;
};

/// Great-circle distance between two points (haversine formula, mean Earth
/// radius 6371 km).
[[nodiscard]] Kilometers great_circle_distance(GeoPoint a, GeoPoint b);

/// One-way propagation delay across `distance` of optical fiber.
///
/// Light in fiber travels at ~2/3 c ≈ 200 km/ms one way. Real paths are not
/// geodesic; `path_inflation` (>= 1) scales the geographic distance to cable
/// distance. The paper quotes "500 km ... as little as 5 ms RTT", i.e.
/// ~1 ms RTT per 100 km of geographic distance at inflation ~1.
[[nodiscard]] Milliseconds propagation_delay(Kilometers distance,
                                             double path_inflation = 1.0);

/// Round-trip propagation delay (2x one-way).
[[nodiscard]] Milliseconds rtt_floor(Kilometers distance, double path_inflation = 1.0);

/// Speed of light in fiber, km per millisecond (one way).
inline constexpr double kFiberKmPerMs = 200.0;

}  // namespace bgpcmp
