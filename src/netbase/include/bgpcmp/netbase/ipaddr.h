// IPv4 addresses and prefixes.
//
// The simulation identifies client populations by prefix (the paper's unit of
// egress routing at a PoP is the <PoP, prefix, route> triple, and Fig 4 is a
// CDF over weighted /24s). We implement a compact value type plus parsing and
// containment so prefixes behave like the real thing in tests and examples.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bgpcmp {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : bits_(host_order) {}

  /// Parse dotted-quad notation ("192.0.2.1"). Returns nullopt on malformed
  /// input (out-of-range octet, wrong field count, junk characters).
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv4 prefix (address + length), e.g. 203.0.113.0/24.
/// Invariant: host bits below the mask are zero and 0 <= length <= 32.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Construct from an address and length; host bits are masked off so the
  /// invariant holds for any input.
  static constexpr Prefix make(Ipv4Address addr, std::uint8_t length) {
    const std::uint32_t mask = mask_for(length);
    return Prefix{Ipv4Address{addr.bits() & mask}, length};
  }

  /// Parse "a.b.c.d/len". Returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address network() const { return network_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const {
    return (addr.bits() & mask_for(length_)) == network_.bits();
  }
  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }
  /// Number of addresses in the prefix (2^(32-len)).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] std::string str() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  constexpr Prefix(Ipv4Address network, std::uint8_t length)
      : network_(network), length_(length) {}

  static constexpr std::uint32_t mask_for(std::uint8_t length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address network_;
  std::uint8_t length_ = 0;
};

}  // namespace bgpcmp

template <>
struct std::hash<bgpcmp::Ipv4Address> {
  std::size_t operator()(const bgpcmp::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<bgpcmp::Prefix> {
  std::size_t operator()(const bgpcmp::Prefix& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.network().bits()) * 31u + p.length();
  }
};
