// Strong unit types used throughout the library.
//
// The simulation mixes quantities whose accidental interchange would be a
// silent catastrophe (milliseconds vs kilometers vs gigabits). Each unit is a
// tiny value type wrapping a double with explicit construction, so the
// compiler rejects unit confusion while codegen stays identical to a raw
// double (ES.* / P.4: prefer compile-time checking).
#pragma once

#include <compare>
#include <cstdint>

namespace bgpcmp {

/// Latency / duration in milliseconds. The paper's figures are all in ms.
class Milliseconds {
 public:
  constexpr Milliseconds() = default;
  constexpr explicit Milliseconds(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Milliseconds operator+(Milliseconds o) const { return Milliseconds{value_ + o.value_}; }
  constexpr Milliseconds operator-(Milliseconds o) const { return Milliseconds{value_ - o.value_}; }
  constexpr Milliseconds operator*(double s) const { return Milliseconds{value_ * s}; }
  constexpr Milliseconds operator/(double s) const { return Milliseconds{value_ / s}; }
  constexpr Milliseconds& operator+=(Milliseconds o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Milliseconds& operator-=(Milliseconds o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr auto operator<=>(const Milliseconds&) const = default;

 private:
  double value_ = 0.0;
};

constexpr Milliseconds operator*(double s, Milliseconds m) { return m * s; }

/// Geographic distance in kilometers.
class Kilometers {
 public:
  constexpr Kilometers() = default;
  constexpr explicit Kilometers(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Kilometers operator+(Kilometers o) const { return Kilometers{value_ + o.value_}; }
  constexpr Kilometers operator-(Kilometers o) const { return Kilometers{value_ - o.value_}; }
  constexpr Kilometers operator*(double s) const { return Kilometers{value_ * s}; }
  constexpr Kilometers& operator+=(Kilometers o) {
    value_ += o.value_;
    return *this;
  }
  constexpr auto operator<=>(const Kilometers&) const = default;

 private:
  double value_ = 0.0;
};

/// Traffic volume in bytes (used as CDF weights; Fig 1 weighs by bytes).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Bytes operator+(Bytes o) const { return Bytes{value_ + o.value_}; }
  constexpr Bytes& operator+=(Bytes o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Bytes operator*(double s) const { return Bytes{value_ * s}; }
  constexpr auto operator<=>(const Bytes&) const = default;

 private:
  double value_ = 0.0;
};

/// Link capacity in gigabits per second.
class GigabitsPerSecond {
 public:
  constexpr GigabitsPerSecond() = default;
  constexpr explicit GigabitsPerSecond(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr GigabitsPerSecond operator+(GigabitsPerSecond o) const {
    return GigabitsPerSecond{value_ + o.value_};
  }
  constexpr GigabitsPerSecond operator*(double s) const { return GigabitsPerSecond{value_ * s}; }
  constexpr auto operator<=>(const GigabitsPerSecond&) const = default;

 private:
  double value_ = 0.0;
};

}  // namespace bgpcmp
