// Compile-time concurrency contracts (docs/TOOLING.md, "Static contracts").
//
// The deterministic-parallelism rules in docs/PARALLELISM.md used to live in
// comments and an after-the-fact runtime audit. This header turns them into
// declarations the compiler checks:
//
//   * BGPCMP_GUARDED_BY / BGPCMP_REQUIRES / BGPCMP_EXCLUDES wrap Clang's
//     Thread Safety Analysis attributes (no-ops elsewhere), enforced with
//     -Werror=thread-safety on every Clang configuration;
//   * Mutex / MutexLock are thin annotated wrappers over std::mutex —
//     libstdc++'s std::mutex carries no capability attributes, so a bare
//     guarded_by(std::mutex) member could never be satisfied;
//   * BGPCMP_SINGLE_THREAD marks types (or members) whose lazy mutable state
//     is deliberately unsynchronized. The marker expands to nothing; it is a
//     machine-readable contract consumed by tools/detlint (rule D2) and
//     backed at runtime by OwningThread below.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "bgpcmp/netbase/check.h"

// Clang exposes the analysis through GNU-style attributes; every other
// compiler sees empty token soup. The __has_attribute probe keeps ancient
// Clangs (and Clang-imitating frontends without TSA) harmless.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BGPCMP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef BGPCMP_THREAD_ANNOTATION_
#define BGPCMP_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define BGPCMP_CAPABILITY(x) BGPCMP_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type that acquires in its constructor, releases in its
/// destructor.
#define BGPCMP_SCOPED_CAPABILITY BGPCMP_THREAD_ANNOTATION_(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define BGPCMP_GUARDED_BY(x) BGPCMP_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose pointee is guarded by `x`.
#define BGPCMP_PT_GUARDED_BY(x) BGPCMP_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function that must be called with the listed capabilities held.
#define BGPCMP_REQUIRES(...) \
  BGPCMP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function that must be called with the listed capabilities NOT held.
#define BGPCMP_EXCLUDES(...) BGPCMP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function that acquires the listed capabilities (the implicit `this` for a
/// capability type when the list is empty).
#define BGPCMP_ACQUIRE(...) \
  BGPCMP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function that releases them.
#define BGPCMP_RELEASE(...) \
  BGPCMP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function that acquires on a given return value.
#define BGPCMP_TRY_ACQUIRE(...) \
  BGPCMP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; use sparingly and say why.
#define BGPCMP_NO_THREAD_SAFETY_ANALYSIS \
  BGPCMP_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Marks a type or data member as single-thread-only by contract: its lazy
/// mutable state is unsynchronized on purpose (WeightedCdf's sort cache,
/// RouteCache's post-warm lazy toward()). Expands to nothing — the value is
/// that tools/detlint rule D2 accepts marked members and flags unmarked
/// mutable state, and reviewers can grep for every such waiver. Pair with an
/// OwningThread runtime assertion so the contract also trips in builds
/// without Clang TSA (see BGPCMP_ASSERT_SINGLE_THREAD).
#define BGPCMP_SINGLE_THREAD

// ---------------------------------------------------------------------------
// Phase and ordering contracts (tools/detlint rules D5/D6).
//
// The deterministic-parallelism architecture is build -> warm -> read-only
// serve (docs/PARALLELISM.md, "warm-then-plan"). These markers expand to
// nothing for the compiler; detlint reads them as facts and checks them over
// an include-graph-wide call graph, so the contract that used to live in the
// comment atop route_cache.h is now machine-enforced.

/// Declares which phase a function belongs to: `build` constructs worlds and
/// tables, `warm` precomputes shared read-only state (route tables, CSR edge
/// indexes), `serve` reads that state — possibly from many threads at once.
/// detlint D5 fails a serve-phase function that transitively performs warm or
/// build work: serving must stay read-only.
#define BGPCMP_PHASE(p)

/// Names the warm step(s) that must complete before this serve-phase function
/// runs inside a parallel region. detlint D5 walks every
/// parallel_for/parallel_map region and requires a dominating call to the
/// named function — earlier in the enclosing function, on the call chain into
/// the region, or performed by a constructor of the named function's class
/// (a fully-warmed object handed to the pool). Violations are reported with
/// the offending call chain.
#define BGPCMP_REQUIRES_WARMED(...)

/// Declares a function pure in its explicit inputs at chunk granularity: no
/// mutable function-local statics, no writes through unannotated namespace-
/// scope globals, and every BGPCMP_REQUIRES_WARMED callee dominated by a
/// per-chunk warm (or constructor discharge) inside the function itself.
/// This is the machine-readable form of the "pure in (world, config, chunk)"
/// comments on run_scale_chunk and the shard codec: detlint D10 chases every
/// reachable call and fails on shared state the chunk did not build for
/// itself, and D9 additionally rejects raw draws on an unforked root Rng in
/// the body. Expands to nothing.
#define BGPCMP_PURE_CHUNK

/// Marks a function as one side of a snapshot wire codec: `section` names the
/// writer/reader pair (world, serving, header) and `role` is writer or
/// reader. detlint D8 parses the struct definition of every type the pair
/// touches, matches the writer's field-access sequence against the reader's
/// (order-sensitive), requires every non-waived field of a serialized struct
/// to cross the wire, and pins the whole layout in
/// tools/detlint/snapshot_schema.lock — any drift without a matching
/// kSnapshotVersion bump fails the scan. Expands to nothing.
#define BGPCMP_SNAPSHOT_CODEC(section, role)

/// Ranks a Mutex in the global acquisition order. detlint D6 builds the
/// acquisition graph from MutexLock/.lock() sites (including locks reached
/// through calls made while a lock is held) and fails on any cycle; where
/// both mutexes carry ranks, it additionally requires ranks to strictly
/// increase along every acquisition chain, which documents the intended
/// hierarchy even before a cycle exists.
#define BGPCMP_ACQUIRES_ORDER(n)

namespace bgpcmp {

/// std::mutex with Clang Thread Safety Analysis attributes. Drop-in for the
/// repo's internal locks; BasicLockable, so it also works directly with
/// std::condition_variable_any (thread_pool.cpp relies on this).
class BGPCMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BGPCMP_ACQUIRE() { mu_.lock(); }
  void unlock() BGPCMP_RELEASE() { mu_.unlock(); }
  bool try_lock() BGPCMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, the annotated analogue of std::lock_guard.
class BGPCMP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BGPCMP_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() BGPCMP_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Runtime backstop for BGPCMP_SINGLE_THREAD: remembers the first thread
/// that exercises a lazy mutation path and BGPCMP_CHECKs that every later
/// one is the same thread. The pin happens on first check(), not at
/// construction, so build-on-thread-A-then-render-on-thread-B handoffs stay
/// legal as long as all *mutation* stays on one side; call reset() before a
/// deliberate handoff of the mutation role.
///
/// Copies and moves start unpinned: a copied container lives wherever the
/// copy lives, and its owner is whoever touches it next.
class OwningThread {
 public:
  OwningThread() = default;
  OwningThread(const OwningThread&) noexcept {}
  OwningThread& operator=(const OwningThread&) noexcept {
    reset();
    return *this;
  }

  /// Pin on first call; fail on any call from a different thread. `what`
  /// names the violated contract in the diagnostic.
  void check(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first use: this thread is now the owner
    }
    BGPCMP_CHECK(expected == self, what,
                 ": BGPCMP_SINGLE_THREAD type mutated from a second thread");
  }

  /// Forget the owner (deliberate handoff between sequential phases).
  void reset() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace bgpcmp

// Owning-thread assertions are compiled in when BGPCMP_THREAD_CHECKS is 1:
// on by default in -DNDEBUG-less builds, forced on in the asan/tsan presets
// (CMakePresets.json), and overridable with -DBGPCMP_THREAD_CHECKS=0/1. The
// guarded sites are lazy-miss paths (a sort, a route-table build), so the
// CAS is noise even when enabled.
#ifndef BGPCMP_THREAD_CHECKS
#ifdef NDEBUG
#define BGPCMP_THREAD_CHECKS 0
#else
#define BGPCMP_THREAD_CHECKS 1
#endif
#endif

#if BGPCMP_THREAD_CHECKS
#define BGPCMP_ASSERT_SINGLE_THREAD(owner, what) (owner).check(what)
#else
#define BGPCMP_ASSERT_SINGLE_THREAD(owner, what) ((void)0)
#endif
