#include "bgpcmp/netbase/ipaddr.h"

#include <charconv>

namespace bgpcmp {

namespace {

// Parse one decimal octet from [pos, text.size()); advances pos past the
// digits. Returns nullopt on empty/overlong/out-of-range octets.
std::optional<std::uint32_t> parse_octet(std::string_view text, std::size_t& pos) {
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  std::uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr == begin || v > 255) return std::nullopt;
  // Reject leading zeros like "01" (ambiguous octal in many parsers).
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  pos += static_cast<std::size_t>(ptr - begin);
  return v;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    auto octet = parse_octet(text, pos);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address{bits};
}

std::string Ipv4Address::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((bits_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  std::uint32_t len = 0;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix::make(*addr, static_cast<std::uint8_t>(len));
}

std::string Prefix::str() const {
  return network_.str() + "/" + std::to_string(length_);
}

}  // namespace bgpcmp
