#include "bgpcmp/netbase/rng.h"

#include <cmath>
#include <numeric>

#include "bgpcmp/netbase/check.h"

namespace bgpcmp {

namespace {

// SplitMix64 finalizer: whitens correlated seeds before feeding mt19937_64.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over the label, mixed with the parent seed, so fork("a") and
// fork("b") are decorrelated and stable across runs.
std::uint64_t derive_seed(std::uint64_t parent, std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ parent;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix(h);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix(seed)) {}

Rng Rng::fork(std::string_view label) const {
  return Rng{derive_seed(seed_, label)};
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>{mean, stddev}(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

double Rng::exponential(double mean) {
  BGPCMP_CHECK_GT(mean, 0.0, "exponential mean must be positive");
  return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  BGPCMP_CHECK_GT(x_m, 0.0, "Pareto scale must be positive");
  BGPCMP_CHECK_GT(alpha, 0.0, "Pareto shape must be positive");
  // Inverse-CDF sampling; (1 - u) avoids pow(0, ...) at u == 0.
  const double u = uniform();
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) {
  BGPCMP_CHECK_GT(n, 0, "cannot pick an index from an empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  BGPCMP_CHECK(!weights.empty(), "weighted pick from an empty weight list");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  BGPCMP_CHECK_GT(total, 0.0, "weights must have a positive sum");
  double target = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric slop lands on the last element
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  BGPCMP_CHECK_GT(n, 0, "Zipf sampler over zero ranks");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  BGPCMP_CHECK_LT(rank, cdf_.size(), "Zipf rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace bgpcmp
