#include "bgpcmp/netbase/geo.h"

#include <cmath>

namespace bgpcmp {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

Kilometers great_circle_distance(GeoPoint a, GeoPoint b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  const double c = 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
  return Kilometers{kEarthRadiusKm * c};
}

Milliseconds propagation_delay(Kilometers distance, double path_inflation) {
  return Milliseconds{distance.value() * path_inflation / kFiberKmPerMs};
}

Milliseconds rtt_floor(Kilometers distance, double path_inflation) {
  return propagation_delay(distance, path_inflation) * 2.0;
}

}  // namespace bgpcmp
