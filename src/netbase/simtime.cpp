#include "bgpcmp/netbase/simtime.h"

#include "bgpcmp/netbase/check.h"

namespace bgpcmp {

double SimTime::hour_of_day() const {
  const std::int64_t day = 86400;
  std::int64_t s = seconds_ % day;
  if (s < 0) s += day;
  return static_cast<double>(s) / 3600.0;
}

std::string SimTime::str() const {
  const std::int64_t day = seconds_ / 86400;
  const std::int64_t rem = seconds_ % 86400;
  const std::int64_t h = rem / 3600;
  const std::int64_t m = (rem % 3600) / 60;
  const std::int64_t s = rem % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld:%02lld",
                static_cast<long long>(day), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

std::vector<TimeWindow> make_windows(SimTime start, SimTime duration, SimTime width) {
  BGPCMP_CHECK_GT(width.seconds(), 0, "window width must be positive");
  std::vector<TimeWindow> out;
  const SimTime end = start + duration;
  for (SimTime t = start; t < end;) {
    SimTime next = t + width;
    if (next > end) next = end;
    out.push_back(TimeWindow{t, next});
    t = next;
  }
  return out;
}

std::vector<TimeWindow> fifteen_minute_grid(double days) {
  return make_windows(SimTime{0}, SimTime::days(days), SimTime::minutes(15));
}

}  // namespace bgpcmp
