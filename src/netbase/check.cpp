#include "bgpcmp/netbase/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bgpcmp {
namespace check_detail {
namespace {

void abort_handler(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, what.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<Handler> g_handler{&abort_handler};

}  // namespace

Handler install_handler(Handler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &abort_handler);
}

void fail(const char* file, int line, std::string what) {
  g_handler.load()(file, line, what);
  // A handler that returns (instead of throwing) must not let execution
  // continue past a violated invariant.
  abort_handler(file, line, what);
  std::abort();
}

std::string compose(const char* expr, const std::string& context) {
  std::string out = "invariant violated: ";
  out += expr;
  if (!context.empty()) {
    out += " -- ";
    out += context;
  }
  return out;
}

std::string compose(const char* expr, const std::string& lhs, const char* op,
                    const std::string& rhs, const std::string& context) {
  std::string out = "invariant violated: ";
  out += expr;
  out += " (";
  out += lhs;
  out += " ";
  out += op;
  out += " ";
  out += rhs;
  out += ")";
  if (!context.empty()) {
    out += " -- ";
    out += context;
  }
  return out;
}

}  // namespace check_detail

namespace {

[[noreturn]] void throw_handler(const char* file, int line, const std::string& what) {
  throw CheckError{std::string(file) + ":" + std::to_string(line) + ": " + what};
}

}  // namespace

ScopedCheckThrows::ScopedCheckThrows()
    : prev_(check_detail::install_handler(&throw_handler)) {}

ScopedCheckThrows::~ScopedCheckThrows() { check_detail::install_handler(prev_); }

}  // namespace bgpcmp
