#include "bgpcmp/bgp/churn.h"

#include <algorithm>
#include <utility>

#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

using detail::ClassState;
using detail::kInfLen;

std::string_view churn_kind_name(ChurnKind k) {
  switch (k) {
    case ChurnKind::Withdraw: return "withdraw";
    case ChurnKind::Announce: return "announce";
    case ChurnKind::Prepend: return "prepend";
    case ChurnKind::SuppressEdge: return "suppress";
    case ChurnKind::LinkFlap: return "link-flap";
    case ChurnKind::FacilityOutage: return "facility-outage";
  }
  return "?";
}

ChurnEngine::ChurnEngine(const AsGraph* graph, OriginSpec base)
    : graph_(graph),
      base_(std::move(base)),
      table_(graph, base_.origin, {}),
      worklist_(graph->as_count()) {
  detail::check_origin(*graph_, base_);
  const std::size_t n = graph_->as_count();
  cust_saved_.reset(n);
  peer_saved_.reset(n);
  prov_saved_.reset(n);
  eff_ = materialize();
  converge();
}

OriginSpec ChurnEngine::materialize() const {
  OriginSpec eff = base_;
  const bool links_down = !link_down_.empty() || !city_down_.empty();
  const auto is_down = [&](LinkId l) {
    return link_down_.contains(l) || city_down_.contains(graph_->link(l).city);
  };
  // A scoped announcement rides specific links: downed ones drop out of the
  // scope (an edge whose scoped links are all down then announces nothing).
  if (eff.scope && links_down) std::erase_if(*eff.scope, is_down);
  const topo::EdgeIndex& idx = graph_->edge_index();
  for (const EdgeId e : idx.edges_of(eff.origin)) {
    if (edge_down_.contains(e)) {
      // A withdrawn session announces nothing, whatever base_ says.
      eff.suppress.insert(e);
      continue;
    }
    if (!links_down || eff.scope) continue;  // scoped edges handled above
    // An unscoped announcement survives on an edge while any link is up.
    const auto& links = graph_->edge(e).links;
    if (!links.empty() && std::all_of(links.begin(), links.end(), is_down)) {
      eff.suppress.insert(e);
    }
  }
  return eff;
}

void ChurnEngine::converge() {
  tables_ = detail::compute_tables(*graph_, eff_);
  table_ = detail::select_best(*graph_, tables_, eff_.origin);
}

ChurnStats ChurnEngine::reconverge(std::span<const ChurnEvent> events) {
  ChurnStats st;
  st.events = events.size();
  const AsIndex o = base_.origin;

  // --- Apply the event batch to the announcement / session state. ---------
  for (const ChurnEvent& ev : events) {
    switch (ev.kind) {
      case ChurnKind::Withdraw:
      case ChurnKind::Announce:
      case ChurnKind::Prepend:
      case ChurnKind::SuppressEdge: {
        BGPCMP_CHECK_LT(ev.edge, graph_->edge_count(), "churn event on an edge outside the graph");
        const auto& edge = graph_->edge(ev.edge);
        BGPCMP_CHECK(edge.a == o || edge.b == o,
                     "session churn events must touch an origin session");
        break;
      }
      case ChurnKind::LinkFlap:
        BGPCMP_CHECK_LT(ev.link, graph_->link_count(), "link flap outside the graph");
        break;
      case ChurnKind::FacilityOutage:
        break;
    }
    switch (ev.kind) {
      case ChurnKind::Withdraw:
        edge_down_.insert(ev.edge);
        break;
      case ChurnKind::Announce:
        // Re-announcing clears both a withdrawal and a grooming suppress.
        edge_down_.erase(ev.edge);
        base_.suppress.erase(ev.edge);
        break;
      case ChurnKind::Prepend:
        // Same contract as check_origin: a negative count would underflow
        // the unsigned length arithmetic, so reject it at the event surface.
        BGPCMP_CHECK_GE(ev.prepend, 0, "prepend count must be non-negative");
        if (ev.prepend == 0) {
          base_.prepend.erase(ev.edge);
        } else {
          base_.prepend[ev.edge] = ev.prepend;
        }
        break;
      case ChurnKind::SuppressEdge:
        base_.suppress.insert(ev.edge);
        break;
      case ChurnKind::LinkFlap:
        if (!link_down_.erase(ev.link)) link_down_.insert(ev.link);
        break;
      case ChurnKind::FacilityOutage:
        if (!city_down_.erase(ev.city)) city_down_.insert(ev.city);
        break;
    }
  }

  // --- Diff the effective announcement session by session. ----------------
  // Every event only moves the origin's own sessions (the AS graph itself is
  // immutable), so the changed frontier starts at origin-incident edges.
  OriginSpec neweff = materialize();
  detail::check_origin(*graph_, neweff);
  const topo::EdgeIndex& idx = graph_->edge_index();
  const auto session = [&](const OriginSpec& s, EdgeId e) {
    const bool ann = s.announces_on(*graph_, e);
    return std::pair<bool, int>{ann, ann ? s.prepend_on(e) : 0};
  };
  // Vectors in CSR scan order, never hash sets: every loop below walks the
  // changed frontier in the same deterministic order a full rebuild would.
  std::vector<EdgeId> changed_up;
  std::vector<EdgeId> changed_peer;
  std::vector<EdgeId> changed_down;
  const auto diff_into = [&](std::span<const EdgeId> edges,
                             std::vector<EdgeId>& out) {
    for (const EdgeId e : edges) {
      if (session(eff_, e) != session(neweff, e)) out.push_back(e);
    }
  };
  const auto in = [](const std::vector<EdgeId>& v, EdgeId e) {
    return std::find(v.begin(), v.end(), e) != v.end();
  };
  diff_into(idx.up_edges(o), changed_up);
  diff_into(idx.peer_edges(o), changed_peer);
  diff_into(idx.down_edges(o), changed_down);
  st.changed_sessions = changed_up.size() + changed_peer.size() + changed_down.size();
  eff_ = std::move(neweff);
  if (st.changed_sessions == 0) return st;

  detail::Tables& t = tables_;
  auto& wl = worklist_;

  // =========================================================================
  // Stage 1 (customer class), incrementally.
  //
  // The customer fixpoint is an in-tree over next_hop chains rooted at the
  // origin, climbing provider edges. Exactly the states whose chain crosses a
  // changed session *must* be recomputed: invalidate that subtree (closure
  // over the old tree via the CSR up-edges), then re-seed the worklist from
  // the origin's sessions and from the invalidation boundary (clean customer
  // states offered to invalidated providers) and relax as usual. Clean states
  // are still achievable (their whole chain is unchanged) and any possible
  // improvement wave starts at a changed session, so monotone relaxation
  // lands on the same least fixpoint a full rebuild computes — byte-
  // identical, including via-edge ties, because edges relax in the same CSR
  // order.
  // =========================================================================
  cust_saved_.begin();
  std::vector<AsIndex>& dirty = scratch_;
  dirty.clear();
  const auto invalidate_cust = [&](AsIndex p) {
    if (cust_saved_.saved(p)) return;
    cust_saved_.save(p, t.cust[p]);
    t.cust[p] = ClassState{};
    dirty.push_back(p);
  };
  for (const EdgeId e : changed_up) {
    const AsIndex p = graph_->edge(e).a;
    if (t.cust[p].valid() && t.cust[p].via_edge == e) invalidate_cust(p);
  }
  for (std::size_t h = 0; h < dirty.size(); ++h) {
    const AsIndex d = dirty[h];
    for (const EdgeId e : idx.up_edges(d)) {
      const AsIndex q = graph_->edge(e).a;
      if (q == o) continue;
      if (t.cust[q].valid() && t.cust[q].next_hop == d) invalidate_cust(q);
    }
  }
  st.invalidated_customer = dirty.size();

  const auto relax_up = [&](AsIndex into, std::uint32_t cand, AsIndex nh, EdgeId e) {
    if (detail::better(*graph_, cand, nh, t.cust[into])) {
      cust_saved_.save(into, t.cust[into]);
      t.cust[into] = ClassState{cand, nh, e};
      wl.push(into);
    }
  };
  // Origin sessions re-seed if the session changed or its provider was
  // invalidated (it may regain its route over an unchanged session).
  for (const EdgeId e : idx.up_edges(o)) {
    const AsIndex p = graph_->edge(e).a;
    if (!in(changed_up, e) && !cust_saved_.saved(p)) continue;
    if (!eff_.announces_on(*graph_, e)) continue;
    relax_up(p, static_cast<std::uint32_t>(1 + eff_.prepend_on(e)), o, e);
  }
  // Boundary: every clean customer state below an invalidated provider is
  // final — offer it back so the subtree regrows from its edges.
  const std::size_t cust_dirty_count = dirty.size();
  for (std::size_t h = 0; h < cust_dirty_count; ++h) {
    const AsIndex x = dirty[h];
    for (const EdgeId e : idx.down_edges(x)) {
      const AsIndex c = graph_->edge(e).b;
      if (c == o || !t.cust[c].valid()) continue;
      relax_up(x, t.cust[c].len + 1, c, e);
    }
  }
  while (!wl.empty()) {
    const AsIndex x = wl.pop();
    ++st.worklist_pops;
    const std::uint32_t len = t.cust[x].len;
    for (const EdgeId e : idx.up_edges(x)) {
      const AsIndex p = graph_->edge(e).a;
      if (p == o) continue;
      relax_up(p, len + 1, x, e);
    }
  }
  std::vector<AsIndex> changed1;
  for (const AsIndex i : cust_saved_.touched) {
    if (!(t.cust[i] == cust_saved_.old[i])) changed1.push_back(i);
  }

  // =========================================================================
  // Stage 2 (peer class): peer[x] depends only on x's own peer sessions, the
  // origin's announcements on them, and the *customer* states of x's peer
  // neighbors — no chaining. So the exact affected set is known up front:
  // targets of changed origin peer sessions plus peer neighbors of every AS
  // whose customer state moved. Recompute those from scratch.
  // =========================================================================
  peer_saved_.begin();
  const auto recompute_peer = [&](AsIndex x) {
    if (x == o || peer_saved_.saved(x)) return;
    peer_saved_.save(x, t.peer[x]);
    ClassState best{};
    for (const EdgeId e : idx.peer_edges(x)) {
      const AsIndex from = graph_->other_end(e, x);
      std::uint32_t cand;
      if (from == o) {
        if (!eff_.announces_on(*graph_, e)) continue;
        cand = static_cast<std::uint32_t>(1 + eff_.prepend_on(e));
      } else {
        if (!t.cust[from].valid()) continue;  // peers export only customer routes
        cand = t.cust[from].len + 1;
      }
      if (detail::better(*graph_, cand, from, best)) best = ClassState{cand, from, e};
    }
    t.peer[x] = best;
  };
  for (const EdgeId e : changed_peer) recompute_peer(graph_->other_end(e, o));
  for (const AsIndex x : changed1) {
    for (const EdgeId e : idx.peer_edges(x)) recompute_peer(graph_->other_end(e, x));
  }
  st.invalidated_peer = peer_saved_.touched.size();
  std::vector<AsIndex> changed2;
  for (const AsIndex i : peer_saved_.touched) {
    if (!(t.peer[i] == peer_saved_.old[i])) changed2.push_back(i);
  }

  // =========================================================================
  // Stage 3 (provider class), incrementally.
  //
  // Provider states chain off *exports* — each AS exports its selected route
  // (customer, else peer, else provider), so the triggers here are (a)
  // changed origin provider->customer sessions and (b) ASes whose selected
  // export length moved in stages 1-2. Invalidate the old provider in-tree
  // hanging off those triggers; the closure descends through a dirty AS only
  // while that AS is provider-selected (a customer/peer-selected AS exports
  // its already-final stage-1/2 state, so its provider children don't care).
  // Then re-seed from the origin's sessions, the boundary (each invalidated
  // customer re-offered every clean provider's current export) and the
  // changed exports, and run the usual guarded descent.
  // =========================================================================
  prov_saved_.begin();
  // Export trigger set: compare old vs new selected length where only the
  // stage-1/2 classes moved (the provider fallback is identical on both
  // sides, so the comparison isolates real export movement).
  std::vector<AsIndex> export_changed;
  const auto old_export_len = [&](AsIndex x) {
    const ClassState& c = cust_saved_.saved(x) ? cust_saved_.old[x] : t.cust[x];
    const ClassState& p = peer_saved_.saved(x) ? peer_saved_.old[x] : t.peer[x];
    if (c.valid()) return c.len;
    if (p.valid()) return p.len;
    return t.prov[x].valid() ? t.prov[x].len : kInfLen;
  };
  const auto consider_export = [&](AsIndex x) {
    if (old_export_len(x) != detail::best_len(t, x, o)) export_changed.push_back(x);
  };
  for (const AsIndex x : changed1) consider_export(x);
  for (const AsIndex x : changed2) consider_export(x);
  // An AS whose customer AND peer class both moved triggers exactly once,
  // and the trigger walk runs in AS-index order.
  std::sort(export_changed.begin(), export_changed.end());
  export_changed.erase(std::unique(export_changed.begin(), export_changed.end()),
                       export_changed.end());

  dirty.clear();
  const auto invalidate_prov = [&](AsIndex c) {
    if (prov_saved_.saved(c)) return;
    prov_saved_.save(c, t.prov[c]);
    t.prov[c] = ClassState{};
    dirty.push_back(c);
  };
  for (const EdgeId e : changed_down) {
    const AsIndex c = graph_->edge(e).b;
    if (c != o && t.prov[c].valid() && t.prov[c].via_edge == e) invalidate_prov(c);
  }
  for (const AsIndex x : export_changed) {
    for (const EdgeId e : idx.down_edges(x)) {
      const AsIndex c = graph_->edge(e).b;
      if (c != o && t.prov[c].valid() && t.prov[c].via_edge == e) invalidate_prov(c);
    }
  }
  for (std::size_t h = 0; h < dirty.size(); ++h) {
    const AsIndex d = dirty[h];
    if (t.cust[d].valid() || t.peer[d].valid()) continue;  // export unchanged
    for (const EdgeId e : idx.down_edges(d)) {
      const AsIndex c = graph_->edge(e).b;
      if (c != o && t.prov[c].valid() && t.prov[c].next_hop == d) invalidate_prov(c);
    }
  }
  st.invalidated_provider = dirty.size();

  const auto relax_down = [&](AsIndex from, std::uint32_t cand, EdgeId e) {
    const AsIndex c = graph_->edge(e).b;
    if (c == o) return;
    if (detail::better(*graph_, cand, from, t.prov[c])) {
      prov_saved_.save(c, t.prov[c]);
      t.prov[c] = ClassState{cand, from, e};
      // Only provider-selected ASes re-export from here, so only they
      // re-enter the worklist (same guard as the full converge).
      if (!t.cust[c].valid() && !t.peer[c].valid()) wl.push(c);
    }
  };
  for (const EdgeId e : idx.down_edges(o)) {
    const AsIndex c = graph_->edge(e).b;
    if (!in(changed_down, e) && !prov_saved_.saved(c)) continue;
    if (!eff_.announces_on(*graph_, e)) continue;
    relax_down(o, static_cast<std::uint32_t>(1 + eff_.prepend_on(e)), e);
  }
  const std::size_t prov_dirty_count = dirty.size();
  for (std::size_t h = 0; h < prov_dirty_count; ++h) {
    const AsIndex c = dirty[h];
    for (const EdgeId e : idx.up_edges(c)) {
      const AsIndex p = graph_->edge(e).a;
      if (p == o) continue;  // origin sessions were seeded above
      // A clean provider's current export is final; a dirty one is skipped
      // here (kInfLen) and will relax downward once it regains a route.
      const std::uint32_t ex = detail::best_len(t, p, o);
      if (ex != kInfLen) relax_down(p, ex + 1, e);
    }
  }
  for (const AsIndex x : export_changed) {
    const std::uint32_t ex = detail::best_len(t, x, o);  // post-invalidation
    if (ex == kInfLen) continue;
    for (const EdgeId e : idx.down_edges(x)) relax_down(x, ex + 1, e);
  }
  while (!wl.empty()) {
    const AsIndex x = wl.pop();
    ++st.worklist_pops;
    const std::uint32_t len = t.prov[x].len;
    for (const EdgeId e : idx.down_edges(x)) relax_down(x, len + 1, e);
  }

  // --- Patch the selected table over the touched frontier. ----------------
  std::vector<AsIndex>& frontier = scratch_;
  frontier.clear();
  frontier.insert(frontier.end(), cust_saved_.touched.begin(), cust_saved_.touched.end());
  frontier.insert(frontier.end(), peer_saved_.touched.begin(), peer_saved_.touched.end());
  frontier.insert(frontier.end(), prov_saved_.touched.begin(), prov_saved_.touched.end());
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());
  for (const AsIndex i : frontier) {
    const BestRoute now = detail::select_one(*graph_, t, i, o);
    const BestRoute& was = table_.at(i);
    if (now.cls == was.cls && now.length == was.length &&
        now.next_hop == was.next_hop && now.via_edge == was.via_edge) {
      continue;
    }
    table_.set(i, now);
    ++st.changed_routes;
  }
  return st;
}

}  // namespace bgpcmp::bgp
