#include "bgpcmp/bgp/route_cache.h"

#include "bgpcmp/exec/thread_pool.h"

namespace bgpcmp::bgp {

std::vector<AsIndex> RouteCache::missing(std::span<const AsIndex> origins) const {
  std::vector<std::uint8_t> seen(slots_.size(), 0);
  std::vector<AsIndex> out;
  for (const AsIndex o : origins) {
    if (slots_.at(o).has_value() || seen[o] != 0) continue;
    seen[o] = 1;
    out.push_back(o);
  }
  return out;
}

void RouteCache::warm(std::span<const AsIndex> origins) {
  for (const AsIndex o : missing(origins)) {
    slots_[o].emplace(compute_routes(*graph_, o));
    ++cached_;
  }
}

void RouteCache::warm(std::span<const AsIndex> origins, exec::ThreadPool& pool) {
  const std::vector<AsIndex> todo = missing(origins);
  if (todo.empty()) return;
  // Build the CSR index before the fan-out so workers share one snapshot
  // instead of racing to construct it (the race is benign but wasteful).
  graph_->edge_index();
  std::vector<RouteTable> tables =
      exec::parallel_map(pool, todo.size(),
                         [&](std::size_t i) { return compute_routes(*graph_, todo[i]); });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    slots_[todo[i]].emplace(std::move(tables[i]));
    ++cached_;
  }
}

}  // namespace bgpcmp::bgp
