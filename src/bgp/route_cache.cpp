#include "bgpcmp/bgp/route_cache.h"

#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

std::vector<AsIndex> RouteCache::missing(std::span<const AsIndex> origins) const {
  std::vector<std::uint8_t> seen(slots_.size(), 0);
  std::vector<AsIndex> out;
  for (const AsIndex o : origins) {
    if (slots_.at(o).has_value() || seen[o] != 0) continue;
    seen[o] = 1;
    out.push_back(o);
  }
  return out;
}

void RouteCache::warm(std::span<const AsIndex> origins) {
  for (const AsIndex o : missing(origins)) {
    slots_[o].emplace(compute_routes(*graph_, o));
    ++cached_;
  }
}

void RouteCache::warm(std::span<const AsIndex> origins, exec::ThreadPool& pool) {
  const std::vector<AsIndex> todo = missing(origins);
  if (todo.empty()) return;
  // Build the CSR index before the fan-out so workers share one snapshot
  // instead of racing to construct it (the race is benign but wasteful).
  (void)graph_->edge_index();
  std::vector<RouteTable> tables =
      exec::parallel_map(pool, todo.size(),
                         [&](std::size_t i) { return compute_routes(*graph_, todo[i]); });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    slots_[todo[i]].emplace(std::move(tables[i]));
    ++cached_;
  }
}

ChurnEngine& RouteCache::engine(AsIndex origin) {
  BGPCMP_CHECK(slots_.at(origin).has_value(),
               "reconverge needs a warmed origin (warm() it first)");
  std::unique_ptr<ChurnEngine>& slot = engines_[origin];
  if (!slot) {
    slot = std::make_unique<ChurnEngine>(graph_, OriginSpec::everywhere(origin));
  }
  return *slot;
}

ChurnStats RouteCache::reconverge(AsIndex origin, std::span<const ChurnEvent> events) {
  ChurnEngine& eng = engine(origin);
  const ChurnStats st = eng.reconverge(events);
  // Publish by copy: readers hold pointers into the slot across find(), so
  // the slot must never alias the engine's mutable working table.
  slots_[origin] = eng.table();
  return st;
}

std::vector<ChurnStats> RouteCache::reconverge(std::span<const OriginChurn> wave,
                                               exec::ThreadPool& pool) {
  // Engines are keyed by origin, so distinctness is what makes the parallel
  // wave race-free; build them (and the CSR index) before the fan-out so
  // workers only touch their own engine.
  std::vector<std::uint8_t> seen(slots_.size(), 0);
  for (const OriginChurn& oc : wave) {
    BGPCMP_CHECK(seen[oc.origin] == 0, "a reconverge wave must not repeat an origin");
    seen[oc.origin] = 1;
    engine(oc.origin);
  }
  (void)graph_->edge_index();
  std::vector<ChurnStats> stats =
      exec::parallel_map(pool, wave.size(), [&](std::size_t i) {
        return engines_[wave[i].origin]->reconverge(wave[i].events);
      });
  for (const OriginChurn& oc : wave) slots_[oc.origin] = engines_[oc.origin]->table();
  return stats;
}

}  // namespace bgpcmp::bgp
