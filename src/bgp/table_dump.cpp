#include "bgpcmp/bgp/table_dump.h"

#include <algorithm>
#include <cstdio>

namespace bgpcmp::bgp {

namespace {

std::string path_string(const AsGraph& graph, const std::vector<AsIndex>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += graph.node(path[i]).name;
  }
  return out;
}

}  // namespace

std::string dump_route(const AsGraph& graph, const RouteTable& table, AsIndex as) {
  char buf[160];
  const BestRoute& r = table.at(as);
  if (!r.reachable()) {
    std::snprintf(buf, sizeof(buf), "%-18s unreachable", graph.node(as).name.c_str());
    return buf;
  }
  if (r.cls == RouteClass::Origin) {
    std::snprintf(buf, sizeof(buf), "%-18s origin", graph.node(as).name.c_str());
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%-18s %-8s len %-3u via %-18s path: ",
                graph.node(as).name.c_str(),
                std::string(route_class_name(r.cls)).c_str(), r.length,
                graph.node(r.next_hop).name.c_str());
  return std::string{buf} + path_string(graph, table.path(as));
}

std::string dump_table(const AsGraph& graph, const RouteTable& table,
                       std::size_t limit) {
  std::string out = "routes toward " + graph.node(table.origin()).name + " (" +
                    graph.node(table.origin()).asn.str() + ")\n";
  std::size_t shown = 0;
  for (AsIndex i = 0; i < table.size(); ++i) {
    if (i == table.origin()) continue;
    out += dump_route(graph, table, i) + "\n";
    if (limit != 0 && ++shown >= limit) {
      out += "... (" + std::to_string(table.size() - 1 - shown) + " more)\n";
      break;
    }
  }
  return out;
}

std::string dump_rib_in(const AsGraph& graph, const RouteTable& table,
                        AsIndex viewer) {
  std::string out = graph.node(viewer).name + " hears, toward " +
                    graph.node(table.origin()).name + ":\n";
  auto candidates = candidate_routes_at(graph, table, viewer);
  // Best first: sort by (class of the *viewer's* perspective isn't modeled
  // here; order by length then neighbor ASN, marking the shortest).
  std::sort(candidates.begin(), candidates.end(),
            [&](const CandidateRoute& a, const CandidateRoute& b) {
              if (a.length != b.length) return a.length < b.length;
              return graph.node(a.neighbor).asn < graph.node(b.neighbor).asn;
            });
  char buf[160];
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    std::snprintf(buf, sizeof(buf), " %c len %-3u from %-18s path: ",
                  i == 0 ? '>' : ' ', c.length,
                  graph.node(c.neighbor).name.c_str());
    out += std::string{buf} + path_string(graph, c.as_path) + "\n";
  }
  if (candidates.empty()) out += "  (nothing)\n";
  return out;
}

}  // namespace bgpcmp::bgp
