#include "bgpcmp/bgp/propagation.h"

#include <limits>
#include <vector>

#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Best-so-far route of one preference class at one AS.
struct ClassState {
  std::uint32_t len = kInf;
  AsIndex next_hop = kNoAs;
  EdgeId via_edge = kNoEdge;

  [[nodiscard]] bool valid() const { return len != kInf; }
};

/// True if (len, next-hop ASN) is strictly better than `cur` — BGP's
/// shortest-path-then-lowest-neighbor tie-breaking within a LocalPref class.
bool better(const AsGraph& g, std::uint32_t len, AsIndex nh, const ClassState& cur) {
  if (len < cur.len) return true;
  if (len > cur.len) return false;
  return g.node(nh).asn < g.node(cur.next_hop).asn;
}

struct Tables {
  std::vector<ClassState> cust;
  std::vector<ClassState> peer;
  std::vector<ClassState> prov;
};

/// Length of the route `as` actually selects (class preference first), or
/// kInf if unrouted. `origin` always selects itself with length 0.
std::uint32_t best_len(const Tables& t, AsIndex as, AsIndex origin) {
  if (as == origin) return 0;
  if (t.cust[as].valid()) return t.cust[as].len;
  if (t.peer[as].valid()) return t.peer[as].len;
  if (t.prov[as].valid()) return t.prov[as].len;
  return kInf;
}

}  // namespace

RouteTable compute_routes(const AsGraph& graph, const OriginSpec& origin) {
  BGPCMP_CHECK_NE(origin.origin, kNoAs, "announcement needs a real origin AS");
  BGPCMP_CHECK_LT(origin.origin, graph.as_count(), "origin AS out of range");
  const std::size_t n = graph.as_count();
  Tables t;
  t.cust.resize(n);
  t.peer.resize(n);
  t.prov.resize(n);

  const AsIndex o = origin.origin;

  // Stage 1: customer routes. An AS has one iff the origin is in its customer
  // cone; propagate up provider edges to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.rel != topo::Relationship::ProviderCustomer) continue;
      const AsIndex provider = edge.a;
      const AsIndex customer = edge.b;
      if (provider == o) continue;  // origin doesn't learn its own prefix
      std::uint32_t len_c;
      int extra = 0;
      if (customer == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_c = 0;
        extra = origin.prepend_on(e);
      } else {
        if (!t.cust[customer].valid()) continue;
        len_c = t.cust[customer].len;
      }
      const std::uint32_t cand = len_c + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, customer, t.cust[provider])) {
        t.cust[provider] = ClassState{cand, customer, e};
        changed = true;
      }
    }
  }

  // Stage 2: peer routes. Valley-freeness allows exactly one peer hop, and
  // only off a customer route (or the origin itself), so one pass suffices.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    if (edge.rel != topo::Relationship::PeerPeer) continue;
    for (const auto& [from, to] :
         {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      if (to == o) continue;
      std::uint32_t len_f;
      int extra = 0;
      if (from == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_f = 0;
        extra = origin.prepend_on(e);
      } else {
        if (!t.cust[from].valid()) continue;  // peers export only customer routes
        len_f = t.cust[from].len;
      }
      const std::uint32_t cand = len_f + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, from, t.peer[to])) {
        t.peer[to] = ClassState{cand, from, e};
      }
    }
  }

  // Stage 3: provider routes. A provider exports its *selected* route (class
  // preference first, so possibly not its shortest) to customers; descend
  // customer edges to a fixpoint.
  changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.rel != topo::Relationship::ProviderCustomer) continue;
      const AsIndex provider = edge.a;
      const AsIndex customer = edge.b;
      if (customer == o) continue;
      std::uint32_t len_p;
      int extra = 0;
      if (provider == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_p = 0;
        extra = origin.prepend_on(e);
      } else {
        len_p = best_len(t, provider, o);
        if (len_p == kInf) continue;
      }
      const std::uint32_t cand = len_p + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, provider, t.prov[customer])) {
        t.prov[customer] = ClassState{cand, provider, e};
        changed = true;
      }
    }
  }

  // Selection: LocalPref class order, already tie-broken within class.
  std::vector<BestRoute> best(n);
  for (AsIndex i = 0; i < n; ++i) {
    if (i == o) {
      best[i] = BestRoute{RouteClass::Origin, 0, kNoAs, kNoEdge};
    } else if (t.cust[i].valid()) {
      best[i] = BestRoute{RouteClass::Customer,
                          static_cast<std::uint16_t>(t.cust[i].len),
                          t.cust[i].next_hop, t.cust[i].via_edge};
    } else if (t.peer[i].valid()) {
      best[i] = BestRoute{RouteClass::Peer, static_cast<std::uint16_t>(t.peer[i].len),
                          t.peer[i].next_hop, t.peer[i].via_edge};
    } else if (t.prov[i].valid()) {
      best[i] = BestRoute{RouteClass::Provider,
                          static_cast<std::uint16_t>(t.prov[i].len),
                          t.prov[i].next_hop, t.prov[i].via_edge};
    }
  }
  return RouteTable{&graph, o, std::move(best)};
}

RouteTable compute_routes(const AsGraph& graph, AsIndex origin) {
  return compute_routes(graph, OriginSpec::everywhere(origin));
}

}  // namespace bgpcmp::bgp
