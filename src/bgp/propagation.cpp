#include "bgpcmp/bgp/propagation.h"

#include <utility>
#include <vector>

#include "bgpcmp/bgp/propagation_detail.h"
#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

namespace detail {

BestRoute select_one(const AsGraph& graph, const Tables& t, AsIndex i,
                     AsIndex origin) {
  (void)graph;
  if (i == origin) return BestRoute{RouteClass::Origin, 0, kNoAs, kNoEdge};
  const auto narrow = [&](const ClassState& s, RouteClass cls) {
    // BestRoute::length is uint16; a uint32 relaxation length past 65535 can
    // only come from a pathological prepend and must not wrap silently.
    BGPCMP_CHECK_LE(s.len, std::numeric_limits<std::uint16_t>::max(),
                    "AS-path length overflows BestRoute::length (check prepends)");
    return BestRoute{cls, static_cast<std::uint16_t>(s.len), s.next_hop, s.via_edge};
  };
  if (t.cust[i].valid()) return narrow(t.cust[i], RouteClass::Customer);
  if (t.peer[i].valid()) return narrow(t.peer[i], RouteClass::Peer);
  if (t.prov[i].valid()) return narrow(t.prov[i], RouteClass::Provider);
  return BestRoute{};
}

RouteTable select_best(const AsGraph& graph, const Tables& t, AsIndex o) {
  const std::size_t n = graph.as_count();
  std::vector<BestRoute> best(n);
  for (AsIndex i = 0; i < n; ++i) best[i] = select_one(graph, t, i, o);
  return RouteTable{&graph, o, std::move(best)};
}

void check_origin(const AsGraph& graph, const OriginSpec& origin) {
  BGPCMP_CHECK_NE(origin.origin, kNoAs, "announcement needs a real origin AS");
  BGPCMP_CHECK_LT(origin.origin, graph.as_count(), "origin AS out of range");
  for (const auto& [edge, count] : origin.prepend) {
    BGPCMP_CHECK_LT(edge, graph.edge_count(), "prepend on an edge outside the graph");
    // prepend_on feeds unsigned length arithmetic (1 + prepend): a negative
    // count would underflow into a near-2^32 "length", so reject it here at
    // every propagation entry point rather than wrapping silently.
    BGPCMP_CHECK_GE(count, 0, "prepend count must be non-negative");
  }
}

Tables compute_tables(const AsGraph& graph, const OriginSpec& origin) {
  check_origin(graph, origin);
  const topo::EdgeIndex& idx = graph.edge_index();
  const std::size_t n = graph.as_count();
  Tables t{n};

  const AsIndex o = origin.origin;
  Worklist wl{n};

  // Stage 1: customer routes. An AS has one iff the origin is in its customer
  // cone. Seed the origin's announcements up its provider edges, then relax
  // each improved AS's provider edges until the wave dies out. Relaxation is
  // monotone in (length, next-hop ASN), so any processing order converges to
  // the same least fixpoint the reference full-scan computes.
  for (const EdgeId e : idx.up_edges(o)) {
    if (!origin.announces_on(graph, e)) continue;
    const AsIndex provider = graph.edge(e).a;
    const auto cand = static_cast<std::uint32_t>(1 + origin.prepend_on(e));
    if (better(graph, cand, o, t.cust[provider])) {
      t.cust[provider] = ClassState{cand, o, e};
      wl.push(provider);
    }
  }
  while (!wl.empty()) {
    const AsIndex x = wl.pop();
    const std::uint32_t len = t.cust[x].len;
    for (const EdgeId e : idx.up_edges(x)) {
      const AsIndex provider = graph.edge(e).a;
      if (provider == o) continue;  // origin doesn't learn its own prefix
      if (better(graph, len + 1, x, t.cust[provider])) {
        t.cust[provider] = ClassState{len + 1, x, e};
        wl.push(provider);
      }
    }
  }

  // Stage 2: peer routes. Valley-freeness allows exactly one peer hop, and
  // only off a customer route (or the origin itself), so one sweep over the
  // peer edges of customer-routed ASes suffices.
  for (const EdgeId e : idx.peer_edges(o)) {
    if (!origin.announces_on(graph, e)) continue;
    const AsIndex to = graph.other_end(e, o);
    const auto cand = static_cast<std::uint32_t>(1 + origin.prepend_on(e));
    if (better(graph, cand, o, t.peer[to])) t.peer[to] = ClassState{cand, o, e};
  }
  for (AsIndex x = 0; x < n; ++x) {
    if (!t.cust[x].valid()) continue;  // peers export only customer routes
    const std::uint32_t len = t.cust[x].len;
    for (const EdgeId e : idx.peer_edges(x)) {
      const AsIndex to = graph.other_end(e, x);
      if (to == o) continue;
      if (better(graph, len + 1, x, t.peer[to])) {
        t.peer[to] = ClassState{len + 1, x, e};
      }
    }
  }

  // Stage 3: provider routes. A provider exports its *selected* route (class
  // preference first, so possibly not its shortest) to customers. The exports
  // of the origin and of customer-/peer-routed ASes are already final — seed
  // those once; only ASes whose selection is provider-learned can improve
  // later, so only they re-enter the worklist.
  const auto relax_down = [&](AsIndex from, std::uint32_t cand, EdgeId e) {
    const AsIndex customer = graph.edge(e).b;
    if (customer == o) return;
    if (better(graph, cand, from, t.prov[customer])) {
      t.prov[customer] = ClassState{cand, from, e};
      if (!t.cust[customer].valid() && !t.peer[customer].valid()) {
        wl.push(customer);
      }
    }
  };
  for (const EdgeId e : idx.down_edges(o)) {
    if (!origin.announces_on(graph, e)) continue;
    relax_down(o, static_cast<std::uint32_t>(1 + origin.prepend_on(e)), e);
  }
  for (AsIndex x = 0; x < n; ++x) {
    if (x == o) continue;
    std::uint32_t len;
    if (t.cust[x].valid()) {
      len = t.cust[x].len;
    } else if (t.peer[x].valid()) {
      len = t.peer[x].len;
    } else {
      continue;
    }
    for (const EdgeId e : idx.down_edges(x)) relax_down(x, len + 1, e);
  }
  while (!wl.empty()) {
    const AsIndex x = wl.pop();
    // x is provider-routed (guarded at push), so its selected length is
    // t.prov[x].len — the best_len the reference implementation reads.
    const std::uint32_t len = t.prov[x].len;
    for (const EdgeId e : idx.down_edges(x)) relax_down(x, len + 1, e);
  }

  return t;
}

}  // namespace detail

RouteTable compute_routes(const AsGraph& graph, const OriginSpec& origin) {
  return detail::select_best(graph, detail::compute_tables(graph, origin),
                             origin.origin);
}

RouteTable compute_routes_reference(const AsGraph& graph, const OriginSpec& origin) {
  using detail::ClassState;
  using detail::Tables;
  using detail::better;
  using detail::kInfLen;
  detail::check_origin(graph, origin);
  const std::size_t n = graph.as_count();
  Tables t{n};

  const AsIndex o = origin.origin;

  // Stage 1: customer routes. An AS has one iff the origin is in its customer
  // cone; propagate up provider edges to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.rel != topo::Relationship::ProviderCustomer) continue;
      const AsIndex provider = edge.a;
      const AsIndex customer = edge.b;
      if (provider == o) continue;  // origin doesn't learn its own prefix
      std::uint32_t len_c;
      int extra = 0;
      if (customer == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_c = 0;
        extra = origin.prepend_on(e);
      } else {
        if (!t.cust[customer].valid()) continue;
        len_c = t.cust[customer].len;
      }
      const std::uint32_t cand = len_c + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, customer, t.cust[provider])) {
        t.cust[provider] = ClassState{cand, customer, e};
        changed = true;
      }
    }
  }

  // Stage 2: peer routes. Valley-freeness allows exactly one peer hop, and
  // only off a customer route (or the origin itself), so one pass suffices.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    if (edge.rel != topo::Relationship::PeerPeer) continue;
    for (const auto& [from, to] :
         {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      if (to == o) continue;
      std::uint32_t len_f;
      int extra = 0;
      if (from == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_f = 0;
        extra = origin.prepend_on(e);
      } else {
        if (!t.cust[from].valid()) continue;  // peers export only customer routes
        len_f = t.cust[from].len;
      }
      const std::uint32_t cand = len_f + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, from, t.peer[to])) {
        t.peer[to] = ClassState{cand, from, e};
      }
    }
  }

  // Stage 3: provider routes. A provider exports its *selected* route (class
  // preference first, so possibly not its shortest) to customers; descend
  // customer edges to a fixpoint.
  changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.rel != topo::Relationship::ProviderCustomer) continue;
      const AsIndex provider = edge.a;
      const AsIndex customer = edge.b;
      if (customer == o) continue;
      std::uint32_t len_p;
      int extra = 0;
      if (provider == o) {
        if (!origin.announces_on(graph, e)) continue;
        len_p = 0;
        extra = origin.prepend_on(e);
      } else {
        len_p = detail::best_len(t, provider, o);
        if (len_p == kInfLen) continue;
      }
      const std::uint32_t cand = len_p + 1 + static_cast<std::uint32_t>(extra);
      if (better(graph, cand, provider, t.prov[customer])) {
        t.prov[customer] = ClassState{cand, provider, e};
        changed = true;
      }
    }
  }

  return detail::select_best(graph, t, o);
}

RouteTable compute_routes(const AsGraph& graph, AsIndex origin) {
  return compute_routes(graph, OriginSpec::everywhere(origin));
}

}  // namespace bgpcmp::bgp
