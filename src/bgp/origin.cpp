#include "bgpcmp/bgp/origin.h"

#include <algorithm>

#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

bool OriginSpec::announces_on(const AsGraph& graph, EdgeId e) const {
  const auto& edge = graph.edge(e);
  BGPCMP_CHECK(edge.a == origin || edge.b == origin,
               "origin must be an endpoint of its announcing edge");
  (void)edge;
  if (suppress.contains(e)) return false;
  if (!scope) return true;
  return std::any_of(scope->begin(), scope->end(), [&](LinkId l) {
    return graph.link(l).edge == e;
  });
}

int OriginSpec::prepend_on(EdgeId e) const {
  const auto it = prepend.find(e);
  return it == prepend.end() ? 0 : it->second;
}

std::vector<LinkId> OriginSpec::entry_links(const AsGraph& graph, EdgeId e) const {
  std::vector<LinkId> out;
  // Suppression beats scope (same precedence announces_on applies): a session
  // the prefix is withheld from has no entry points, even if its links are
  // scoped in. Before this check the two methods disagreed — a suppressed
  // edge reported entry links for a prefix it never announced.
  if (suppress.contains(e)) return out;
  for (const LinkId l : graph.edge(e).links) {
    if (!scope || std::find(scope->begin(), scope->end(), l) != scope->end()) {
      out.push_back(l);
    }
  }
  return out;
}

}  // namespace bgpcmp::bgp
