// Routing invariant checkers used by the property-test suites.
#pragma once

#include <span>

#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp {

/// True if the AS-level path [src..origin] is valley-free: viewed in the
/// direction of route propagation, the path climbs customer->provider edges,
/// crosses at most one peer edge, then descends provider->customer edges —
/// equivalently, in forwarding order, no AS provides gratis transit.
[[nodiscard]] bool is_valley_free(const AsGraph& graph, std::span<const AsIndex> path);

/// True if every reachable AS's selected route obeys export rules with
/// respect to its next hop (no route learned that the neighbor would not have
/// exported) and chains to the origin without loops.
[[nodiscard]] bool table_is_consistent(const AsGraph& graph, const RouteTable& table);

}  // namespace bgpcmp::bgp
