// Human-readable dumps of routing state, in the spirit of `show ip bgp`.
// Used by the bgpcmp CLI and handy when debugging generated topologies.
#pragma once

#include <string>

#include "bgpcmp/bgp/rib.h"
#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp {

/// One line per AS: its selected route toward the table's origin
/// (class, length, next hop, full AS path). `limit` truncates the dump
/// (0 = all ASes).
[[nodiscard]] std::string dump_table(const AsGraph& graph, const RouteTable& table,
                                     std::size_t limit = 0);

/// The route one AS selected, as a single line.
[[nodiscard]] std::string dump_route(const AsGraph& graph, const RouteTable& table,
                                     AsIndex as);

/// `show ip bgp`-style view of everything a viewer hears toward the origin:
/// one line per candidate, best first ('>' marker).
[[nodiscard]] std::string dump_rib_in(const AsGraph& graph, const RouteTable& table,
                                      AsIndex viewer);

}  // namespace bgpcmp::bgp
