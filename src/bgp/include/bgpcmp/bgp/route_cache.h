// Memoized route computation with a parallel warm phase.
//
// Studies evaluate routes toward hundreds of client origins, many sharing an
// origin AS; the cache computes each table once. Tables are stable because
// the graph is immutable after construction.
//
// Warm/read contract: call warm() with every origin the study will query —
// serially or across a thread pool, tables land in index-addressed slots so
// the result is byte-identical at any pool width (docs/PARALLELISM.md) —
// then query toward() / find() freely from concurrent readers. toward() on a
// cache miss still computes lazily, which is only safe single-threaded; the
// concurrent phase of a study must touch warmed origins only (find() checks).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bgpcmp/bgp/churn.h"
#include "bgpcmp/bgp/propagation.h"
#include "bgpcmp/netbase/thread_annotations.h"

namespace bgpcmp::exec {
class ThreadPool;
}  // namespace bgpcmp::exec

namespace bgpcmp::bgp {

/// One origin's share of a churn wave: the events hitting its sessions.
struct OriginChurn {
  AsIndex origin = topo::kNoAs;
  std::vector<ChurnEvent> events;
};

// The lazy-miss side of toward() is single-thread-only by contract (the
// BGPCMP_SINGLE_THREAD marker below is what tools/detlint checks); warmed
// reads through find() are safe from any number of threads.
class BGPCMP_SINGLE_THREAD RouteCache {
 public:
  explicit RouteCache(const AsGraph* graph)
      : graph_(graph), slots_(graph->as_count()), engines_(graph->as_count()) {}

  /// Compute the tables for every distinct uncached origin, serially. Slots
  /// are keyed by origin index, so warming never moves existing tables.
  BGPCMP_PHASE(warm)
  void warm(std::span<const AsIndex> origins);

  /// Same, but fans the distinct uncached origins out over `pool` via
  /// parallel_map. Byte-identical to the serial overload at any pool width.
  BGPCMP_PHASE(warm)
  void warm(std::span<const AsIndex> origins, exec::ThreadPool& pool);

  /// Install a precomputed table into `origin`'s slot (snapshot restore:
  /// core/snapshot.h deserializes warmed tables instead of recomputing
  /// them). Same slot discipline as warm() — and the installed bytes are
  /// golden-pinned equal to a recompute by the snapshot's table digests.
  BGPCMP_PHASE(warm)
  void install(AsIndex origin, RouteTable table) {
    std::optional<RouteTable>& slot = slots_.at(origin);
    if (slot.has_value()) return;  // warm() semantics: first fill wins
    slot.emplace(std::move(table));
    ++cached_;
  }

  /// The routing table toward `origin`, computed on first use. Lazy misses
  /// mutate the cache — single-threaded callers only; parallel phases must
  /// stick to origins covered by an earlier warm().
  const RouteTable& toward(AsIndex origin) {
    std::optional<RouteTable>& slot = slots_.at(origin);
    if (!slot.has_value()) {
      // A lazy miss mutates the cache: catch a second mutating thread even
      // in builds without Clang TSA (hits above stay unchecked — they are
      // pure reads and legal from any thread after warm()).
      BGPCMP_ASSERT_SINGLE_THREAD(lazy_owner_, "RouteCache::toward cache miss");
      slot.emplace(compute_routes(*graph_, origin));
      ++cached_;
    }
    return *slot;
  }

  /// The warmed table toward `origin`, or nullptr if it was never computed.
  /// Read-only: safe from concurrent readers after warming. detlint D5
  /// requires every parallel region that reaches this to be dominated by a
  /// warm() call; toward() above carries no phase annotation on purpose —
  /// its lazy-miss path is covered by the class-level BGPCMP_SINGLE_THREAD
  /// waiver and the OwningThread runtime pin instead.
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(warm)
  [[nodiscard]] const RouteTable* find(AsIndex origin) const {
    const std::optional<RouteTable>& slot = slots_.at(origin);
    return slot.has_value() ? &*slot : nullptr;
  }

  /// Apply an event batch to one warmed origin and re-converge its table
  /// incrementally from the changed frontier (churn.h). A warm-delta step:
  /// the slot must already be warmed, and it stays warmed (byte-identical to
  /// evicting and recomputing under the post-event announcement). The first
  /// reconverge for an origin builds its churn engine off the warmed state.
  BGPCMP_PHASE(warm)
  BGPCMP_REQUIRES_WARMED(warm)
  ChurnStats reconverge(AsIndex origin, std::span<const ChurnEvent> events);

  /// Same, fanning a wave of per-origin batches out over `pool`. Origins in
  /// one wave must be distinct: engines and slots are keyed by origin index,
  /// so distinct origins touch disjoint state and the result is
  /// byte-identical at any pool width — the same index-addressed-slot
  /// discipline as warm() (docs/PARALLELISM.md).
  BGPCMP_PHASE(warm)
  BGPCMP_REQUIRES_WARMED(warm)
  std::vector<ChurnStats> reconverge(std::span<const OriginChurn> wave,
                                     exec::ThreadPool& pool);

  /// Number of origins with a computed table.
  [[nodiscard]] std::size_t size() const { return cached_; }

 private:
  /// Origins from `origins` that have no cached table yet, deduplicated,
  /// in first-appearance order.
  [[nodiscard]] std::vector<AsIndex> missing(std::span<const AsIndex> origins) const;

  /// The churn engine for `origin`, built on first use (a full converge that
  /// must agree with the warmed slot — golden-pinned in churn_test).
  ChurnEngine& engine(AsIndex origin);

  const AsGraph* graph_;
  std::vector<std::optional<RouteTable>> slots_;  ///< keyed by origin index
  /// Churn engines, keyed by origin index like slots_ (so parallel
  /// reconverge waves over distinct origins write disjoint entries).
  std::vector<std::unique_ptr<ChurnEngine>> engines_;
  std::size_t cached_ = 0;
  OwningThread lazy_owner_;  ///< pins the thread taking lazy toward() misses
};

}  // namespace bgpcmp::bgp
