// Memoized route computation.
//
// Studies evaluate routes toward hundreds of client origins, many sharing an
// origin AS; the cache computes each table once. Tables are stable because
// the graph is immutable after construction.
//
// SINGLE-THREAD ONLY: toward() populates the map lazily with no
// synchronization. Studies that fan out over the exec thread pool must
// finish all toward() calls in their sequential planning phase (as
// run_pop_study does) or give each worker its own cache; do not share a
// RouteCache across concurrent callers.
#pragma once

#include <map>

#include "bgpcmp/bgp/propagation.h"

namespace bgpcmp::bgp {

class RouteCache {
 public:
  explicit RouteCache(const AsGraph* graph) : graph_(graph) {}

  /// The routing table toward `origin` (computed on first use).
  const RouteTable& toward(AsIndex origin) {
    auto it = tables_.find(origin);
    if (it == tables_.end()) {
      it = tables_.emplace(origin, compute_routes(*graph_, origin)).first;
    }
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return tables_.size(); }

 private:
  const AsGraph* graph_;
  std::map<AsIndex, RouteTable> tables_;
};

}  // namespace bgpcmp::bgp
