// Longest-prefix-match table (the FIB data structure).
//
// Maps IPv4 prefixes to values with router semantics: a lookup returns the
// value of the most-specific covering prefix. Used to resolve client
// addresses to their /24 populations and by the CLI's `lookup` command; a
// binary trie keyed on prefix bits, O(32) per operation.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "bgpcmp/netbase/ipaddr.h"

namespace bgpcmp::bgp {

template <typename T>
class PrefixMap {
 public:
  PrefixMap() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns true if a value was
  /// already present (and has been replaced).
  bool insert(const Prefix& prefix, T value) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      auto& child = child_for(node, prefix, depth);
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool replaced = node->value.has_value();
    node->value = std::move(value);
    if (!replaced) ++size_;
    return replaced;
  }

  /// Value stored at exactly `prefix`, if any.
  [[nodiscard]] const T* exact(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const auto& child = child_for(node, prefix, depth);
      if (!child) return nullptr;
      node = child.get();
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix-match: the value of the most-specific prefix covering
  /// `addr`, or nullptr if nothing covers it.
  [[nodiscard]] const T* lookup(Ipv4Address addr) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32; ++depth) {
      const bool bit = (addr.bits() >> (31 - depth)) & 1u;
      const auto& child = bit ? node->one : node->zero;
      if (!child) break;
      node = child.get();
      if (node->value) best = &*node->value;
    }
    return best;
  }

  /// Remove the value at exactly `prefix`. Returns true if one was removed.
  bool erase(const Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      auto& child = child_for(node, prefix, depth);
      if (!child) return false;
      node = child.get();
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  template <typename NodeT>
  static auto& child_for(NodeT* node, const Prefix& prefix, std::uint8_t depth) {
    const bool bit = (prefix.network().bits() >> (31 - depth)) & 1u;
    return bit ? node->one : node->zero;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace bgpcmp::bgp
