// BGP route representation and per-origin routing tables.
//
// We compute, for one origin (destination) at a time, the route every AS in
// the graph selects under Gao-Rexford policy: prefer customer-learned over
// peer-learned over provider-learned (the LocalPref convention), then
// shortest AS path (including prepending), then lowest next-hop ASN. The
// table stores each AS's best route; full AS paths are reconstructed by
// chaining next hops, which is consistent because every AS exports exactly
// the route it uses.
#pragma once

#include <cstdint>
#include <vector>

#include "bgpcmp/netbase/check.h"
#include "bgpcmp/topology/as_graph.h"

namespace bgpcmp::bgp {

using topo::AsGraph;
using topo::AsIndex;
using topo::EdgeId;
using topo::kNoAs;
using topo::kNoEdge;

/// How a route was learned, in decreasing order of preference.
enum class RouteClass : std::uint8_t {
  None,      ///< unreachable
  Origin,    ///< this AS originates the prefix
  Customer,  ///< learned from a customer (highest LocalPref)
  Peer,      ///< learned from a settlement-free peer
  Provider,  ///< learned from a transit provider (lowest LocalPref)
};

[[nodiscard]] std::string_view route_class_name(RouteClass c);

/// Preference rank: smaller is better. Origin beats everything.
[[nodiscard]] constexpr int route_class_rank(RouteClass c) {
  switch (c) {
    case RouteClass::Origin: return 0;
    case RouteClass::Customer: return 1;
    case RouteClass::Peer: return 2;
    case RouteClass::Provider: return 3;
    case RouteClass::None: return 4;
  }
  return 4;
}

/// The route an AS selected toward the origin.
struct BestRoute {
  RouteClass cls = RouteClass::None;
  std::uint16_t length = 0;    ///< BGP path length incl. prepending
  AsIndex next_hop = kNoAs;    ///< neighbor the route was learned from
  EdgeId via_edge = kNoEdge;   ///< edge to that neighbor

  [[nodiscard]] bool reachable() const { return cls != RouteClass::None; }
};

/// Per-origin routing table: one BestRoute per AS in the graph.
class RouteTable {
 public:
  RouteTable(const AsGraph* graph, AsIndex origin, std::vector<BestRoute> routes)
      : graph_(graph), origin_(origin), routes_(std::move(routes)) {}

  [[nodiscard]] AsIndex origin() const { return origin_; }
  [[nodiscard]] const AsGraph& graph() const { return *graph_; }
  // at/set/reachable are the innermost reads of every study and of the churn
  // engine's patch loop: a diagnosable bounds check plus unchecked indexing
  // replaces vector::at's throwing check (same guarantee, better message, and
  // the [[unlikely]] branch keeps the hot path straight-line).
  [[nodiscard]] const BestRoute& at(AsIndex as) const {
    BGPCMP_CHECK_LT(as, routes_.size(), "AS index outside route table");
    return routes_[as];
  }
  /// Overwrite one AS's selected route. Reserved for the churn engine's
  /// incremental re-convergence (churn.h), which patches only the frontier a
  /// delta touched; study code treats tables as immutable.
  void set(AsIndex as, const BestRoute& route) {
    BGPCMP_CHECK_LT(as, routes_.size(), "AS index outside route table");
    routes_[as] = route;
  }
  [[nodiscard]] bool reachable(AsIndex as) const { return at(as).reachable(); }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// AS-level forwarding path [from, ..., origin]. Empty if unreachable.
  [[nodiscard]] std::vector<AsIndex> path(AsIndex from) const;
  /// The edges along path(from) (size = path size - 1).
  [[nodiscard]] std::vector<EdgeId> path_edges(AsIndex from) const;

 private:
  const AsGraph* graph_;
  AsIndex origin_;
  std::vector<BestRoute> routes_;
};

}  // namespace bgpcmp::bgp
