// Network-wide BGP route propagation under Gao-Rexford policy.
//
// Three-stage computation of the routes every AS selects toward one origin:
// (1) customer routes climb provider edges from the origin's customer cone;
// (2) peer routes extend one peer hop off customer routes; (3) provider
// routes descend customer edges from any routed AS. Within a preference
// class, shorter paths win; ties break on lowest next-hop ASN, mirroring
// BGP's deterministic tie-breaking. The result is guaranteed valley-free.
#pragma once

#include "bgpcmp/bgp/origin.h"
#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp {

/// Compute the routing table toward `origin` with a worklist relaxation over
/// the graph's CSR incident-edge index: each stage seeds from the origin and
/// relaxes only the edges of ASes whose route just improved, so a table costs
/// near-linear work in touched edges. Relaxation within a class is monotone
/// in (length, next-hop ASN), so the result is the unique least fixpoint —
/// byte-identical to compute_routes_reference regardless of visit order.
[[nodiscard]] RouteTable compute_routes(const AsGraph& graph, const OriginSpec& origin);

/// Full-scan fixpoint implementation: every stage rescans all edges per pass,
/// O(passes * edges). Kept as the golden reference the worklist algorithm is
/// pinned against in tests; not for production paths.
[[nodiscard]] RouteTable compute_routes_reference(const AsGraph& graph,
                                                  const OriginSpec& origin);

/// Convenience: origin announced on all sessions.
[[nodiscard]] RouteTable compute_routes(const AsGraph& graph, AsIndex origin);

}  // namespace bgpcmp::bgp
