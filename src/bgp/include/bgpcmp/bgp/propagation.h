// Network-wide BGP route propagation under Gao-Rexford policy.
//
// Three-stage fixpoint computation of the routes every AS selects toward one
// origin: (1) customer routes climb provider edges from the origin's customer
// cone; (2) peer routes extend one peer hop off customer routes; (3) provider
// routes descend customer edges from any routed AS. Within a preference
// class, shorter paths win; ties break on lowest next-hop ASN, mirroring
// BGP's deterministic tie-breaking. The result is guaranteed valley-free.
#pragma once

#include "bgpcmp/bgp/origin.h"
#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp {

/// Compute the routing table toward `origin`. O(passes * edges); topologies
/// in this library converge in a handful of passes.
[[nodiscard]] RouteTable compute_routes(const AsGraph& graph, const OriginSpec& origin);

/// Convenience: origin announced on all sessions.
[[nodiscard]] RouteTable compute_routes(const AsGraph& graph, AsIndex origin);

}  // namespace bgpcmp::bgp
