// Origin specification: who announces a prefix, over which sessions, with
// which per-session modifications.
//
// This is also the grooming surface (§3.2.2): operators "groom" anycast by
// prepending to particular peers at particular locations, scoping propagation
// with communities, or withdrawing an announcement from a session. All three
// are expressible here, so the grooming study (E8) manipulates exactly what a
// real operator would.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgpcmp/topology/as_graph.h"

namespace bgpcmp::bgp {

using topo::AsGraph;
using topo::AsIndex;
using topo::EdgeId;
using topo::LinkId;

struct OriginSpec {
  AsIndex origin = topo::kNoAs;

  /// If set, the prefix is announced only over these links (e.g. a unicast
  /// front-end prefix announced only at its PoP). Empty optional = announce
  /// on all sessions.
  std::optional<std::vector<LinkId>> scope;

  /// Grooming: extra AS-path prepends applied to announcements on an edge.
  std::map<EdgeId, int> prepend;

  /// Grooming: sessions on which the prefix is withheld entirely.
  std::set<EdgeId> suppress;

  /// Announce on every session (the common case).
  static OriginSpec everywhere(AsIndex origin) {
    OriginSpec s;
    s.origin = origin;
    return s;
  }

  /// Announce only over the given links.
  static OriginSpec scoped(AsIndex origin, std::vector<LinkId> links) {
    OriginSpec s;
    s.origin = origin;
    s.scope = std::move(links);
    return s;
  }

  /// True if the origin announces the prefix over edge `e` at all.
  /// Precedence when a link of `e` is scoped in AND `e` is suppressed:
  /// suppression wins — an operator withdrawing a session silences it even
  /// where the scope would announce (entry_links agrees and returns none).
  [[nodiscard]] bool announces_on(const AsGraph& graph, EdgeId e) const;

  /// Prepend count applied on edge `e` (0 if none). Counts must be
  /// non-negative; propagation validates this (check_origin) because a
  /// negative count would underflow the unsigned length arithmetic.
  [[nodiscard]] int prepend_on(EdgeId e) const;

  /// The links of edge `e` usable as entry points into the origin for this
  /// prefix (all of the edge's links, or the scoped subset; none if the edge
  /// is suppressed — consistent with announces_on).
  [[nodiscard]] std::vector<LinkId> entry_links(const AsGraph& graph, EdgeId e) const;
};

}  // namespace bgpcmp::bgp
