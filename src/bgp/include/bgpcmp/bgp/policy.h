// Route-selection policies.
//
// Propagation already encodes the Internet-standard Gao-Rexford preference.
// This header adds the *content-provider* egress policy from the paper
// (§3.1): "prefers private peers with dedicated capacity first, then public
// peers, and finally transit providers; and chooses shorter paths over longer
// ones" — the performance-agnostic default that Edge-Fabric-style controllers
// override.
#pragma once

#include "bgpcmp/bgp/rib.h"
#include "bgpcmp/topology/as_graph.h"

namespace bgpcmp::bgp {

using topo::LinkKind;

/// Egress class rank under the provider's BGP policy; smaller is preferred.
[[nodiscard]] int egress_rank(topo::NeighborRole role, LinkKind kind);

/// Strict-weak-order comparator over candidates at a PoP. `kind_a/kind_b` are
/// the best link kinds available for each candidate at that PoP (a candidate
/// edge may have both a PNI and a public session; the PNI wins).
[[nodiscard]] bool egress_preferred(const AsGraph& graph, const CandidateRoute& a,
                                    LinkKind kind_a, const CandidateRoute& b,
                                    LinkKind kind_b);

}  // namespace bgpcmp::bgp
