// Adj-RIB-in reconstruction: the full set of routes a given AS *hears* from
// its neighbors toward an origin.
//
// The PoP study needs more than each AS's best route: at a content-provider
// PoP, BGP chooses among the routes announced by every connected peer and
// transit, and the measurement system sprays traffic over the top-k of them
// (§3.1). A neighbor exports its selected route to the viewer iff the viewer
// is its customer, or the route is a customer/own route (standard export
// policy); we reconstruct exactly that candidate set from the route table.
#pragma once

#include <vector>

#include "bgpcmp/bgp/origin.h"
#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp {

/// One route offered to the viewer by a neighbor.
struct CandidateRoute {
  AsIndex neighbor = kNoAs;  ///< next-hop AS
  EdgeId edge = kNoEdge;     ///< viewer-neighbor edge
  topo::NeighborRole neighbor_role = topo::NeighborRole::Peer;  ///< neighbor's role vs viewer
  RouteClass neighbor_class = RouteClass::None;  ///< class of the neighbor's own route
  std::uint16_t length = 0;  ///< BGP path length as heard by the viewer
  std::vector<AsIndex> as_path;  ///< [neighbor, ..., origin]
};

/// All routes the viewer hears toward the table's origin, one per exporting
/// neighbor. Includes the direct route if the viewer neighbors the origin.
/// `origin_spec` must be the spec the table was computed with (it governs
/// which sessions the origin announced on).
[[nodiscard]] std::vector<CandidateRoute> candidate_routes_at(
    const AsGraph& graph, const RouteTable& table, const OriginSpec& origin_spec,
    AsIndex viewer);

/// Overload for an unscoped origin.
[[nodiscard]] std::vector<CandidateRoute> candidate_routes_at(const AsGraph& graph,
                                                              const RouteTable& table,
                                                              AsIndex viewer);

}  // namespace bgpcmp::bgp
