// Event-driven churn: incremental re-convergence of one prefix's routes.
//
// Every study so far rebuilds compute_routes from scratch per window over a
// static world, but real BGP is a long-running daemon absorbing announce /
// withdraw / flap events and re-converging only the affected frontier (the
// quagga bgpd Local-RIB update path works exactly this way). ChurnEngine is
// that daemon loop for one announced prefix: it retains the per-class
// relaxation state a full converge produces, applies an event stream to the
// announcement, invalidates the class states reachable from the touched
// origin sessions via the CSR EdgeIndex route trees, re-seeds the three-stage
// worklists from the invalidation boundary, and relaxes back to the unique
// least fixpoint — byte-identical to a full rebuild under the post-event
// spec (golden-pinned in tests/bgp/churn_test.cpp), at a cost proportional
// to the affected frontier instead of the world. docs/CHURN.md documents the
// event model and the invalidation argument.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "bgpcmp/bgp/propagation_detail.h"
#include "bgpcmp/netbase/thread_annotations.h"

namespace bgpcmp::bgp {

using topo::CityId;
using topo::LinkId;

/// What happened to the announcement or the sessions carrying it.
enum class ChurnKind : std::uint8_t {
  Withdraw,        ///< stop announcing the prefix on a session (edge)
  Announce,        ///< (re)announce on a session; also clears a grooming suppress
  Prepend,         ///< set the AS-path prepend count on a session
  SuppressEdge,    ///< grooming suppress: withhold the prefix from a session
  LinkFlap,        ///< toggle one physical link down/up
  FacilityOutage,  ///< toggle every link in a city down/up (facility power)
};

[[nodiscard]] std::string_view churn_kind_name(ChurnKind k);

/// One event in a churn stream. Which field matters depends on `kind`; use
/// the factories so streams read like an operator log.
struct ChurnEvent {
  ChurnKind kind = ChurnKind::Withdraw;
  EdgeId edge = kNoEdge;         ///< Withdraw / Announce / Prepend / SuppressEdge
  LinkId link = topo::kNoLink;   ///< LinkFlap
  CityId city = topo::kNoCity;   ///< FacilityOutage
  int prepend = 0;               ///< Prepend: new total count (0 clears)

  static ChurnEvent withdraw(EdgeId e) { return {ChurnKind::Withdraw, e}; }
  static ChurnEvent announce(EdgeId e) { return {ChurnKind::Announce, e}; }
  static ChurnEvent prepend_set(EdgeId e, int count) {
    ChurnEvent ev{ChurnKind::Prepend, e};
    ev.prepend = count;
    return ev;
  }
  static ChurnEvent suppress_edge(EdgeId e) { return {ChurnKind::SuppressEdge, e}; }
  static ChurnEvent link_flap(LinkId l) {
    ChurnEvent ev{ChurnKind::LinkFlap};
    ev.link = l;
    return ev;
  }
  static ChurnEvent facility_outage(CityId c) {
    ChurnEvent ev{ChurnKind::FacilityOutage};
    ev.city = c;
    return ev;
  }
};

/// What one reconverge() did — the locality measure the churn bench (E18)
/// reports: invalidated counts bound the re-relaxed frontier, changed_routes
/// is how much of the table actually moved.
struct ChurnStats {
  std::size_t events = 0;          ///< events applied this batch
  std::size_t changed_sessions = 0;  ///< origin sessions whose (announced, prepend) changed
  std::size_t invalidated_customer = 0;  ///< stage-1 class states cleared
  std::size_t invalidated_peer = 0;      ///< stage-2 class states recomputed
  std::size_t invalidated_provider = 0;  ///< stage-3 class states cleared
  std::size_t worklist_pops = 0;   ///< relaxation steps across all stages
  std::size_t changed_routes = 0;  ///< ASes whose selected BestRoute changed

  [[nodiscard]] std::size_t invalidated() const {
    return invalidated_customer + invalidated_peer + invalidated_provider;
  }
};

/// Incremental re-convergence for one announced prefix.
///
/// Lifecycle: construct (full converge, retaining per-class state), then
/// alternate reconverge(events) — a single-threaded warm-delta step — with
/// read-only table() queries. Different prefixes get independent engines and
/// may re-converge concurrently (RouteCache fans exactly that out); one
/// engine is single-writer like every warm-phase structure, but is not
/// thread-pinned — successive fork-join waves may run it on different
/// workers (docs/PARALLELISM.md, index-addressed slots).
class ChurnEngine {
 public:
  /// Full three-stage converge of `base` (the announcement before any
  /// events); `graph` must outlive the engine and stay immutable.
  BGPCMP_PHASE(warm)
  ChurnEngine(const AsGraph* graph, OriginSpec base);

  /// Apply an event batch and re-converge from the changed frontier. A
  /// warm-delta step: mutates warmed state and leaves it warmed, so a
  /// dominating reconverge() call re-establishes the converge/warm contract
  /// for detlint D5 (docs/TOOLING.md, "Phase contracts").
  BGPCMP_PHASE(warm)
  BGPCMP_REQUIRES_WARMED(converge)
  ChurnStats reconverge(std::span<const ChurnEvent> events);

  /// The current routing table (post every event applied so far). Read-only;
  /// safe from concurrent readers between reconverge() calls.
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(converge)
  [[nodiscard]] const RouteTable& table() const { return table_; }

  /// The announcement as the network currently sees it: the groomed base
  /// spec with withdrawn sessions and links downed by flaps/outages
  /// materialized into suppress/scope. compute_routes_reference over this
  /// spec is the golden the incremental table is pinned against.
  [[nodiscard]] const OriginSpec& effective_spec() const { return eff_; }

  [[nodiscard]] AsIndex origin() const { return base_.origin; }

 private:
  /// Epoch-stamped pre-delta snapshots of one class column: the first write
  /// to an AS in a reconverge() saves its old state, so change detection and
  /// the final table patch walk only the touched frontier, never all n ASes.
  struct SavedClass {
    std::vector<std::uint32_t> stamp;
    std::vector<detail::ClassState> old;
    std::vector<AsIndex> touched;
    std::uint32_t epoch = 0;

    void reset(std::size_t n) {
      stamp.assign(n, 0);
      old.assign(n, detail::ClassState{});
      touched.clear();
      epoch = 0;
    }
    void begin() {
      ++epoch;
      touched.clear();
    }
    /// Record `cur` as i's pre-delta state (first save this epoch wins).
    void save(AsIndex i, const detail::ClassState& cur) {
      if (stamp[i] == epoch) return;
      stamp[i] = epoch;
      old[i] = cur;
      touched.push_back(i);
    }
    [[nodiscard]] bool saved(AsIndex i) const { return stamp[i] == epoch; }
  };

  /// Recompute eff_ from base_ and the down sets.
  [[nodiscard]] OriginSpec materialize() const;
  /// Full converge under eff_ (construction only; deltas re-relax in place).
  BGPCMP_PHASE(warm)
  void converge();

  const AsGraph* graph_;
  OriginSpec base_;  ///< groomed announcement (Prepend/SuppressEdge/Announce mutate this)
  OriginSpec eff_;   ///< base_ with session/link/facility state folded in
  std::unordered_set<EdgeId> edge_down_;    ///< Withdraw'd sessions
  std::unordered_set<LinkId> link_down_;    ///< LinkFlap'd links
  std::unordered_set<CityId> city_down_;    ///< FacilityOutage'd cities
  detail::Tables tables_;  ///< per-class fixpoint state, kept across deltas
  RouteTable table_;       ///< selection over tables_, patched per delta
  SavedClass cust_saved_;  ///< stage-1 delta snapshots
  SavedClass peer_saved_;  ///< stage-2 delta snapshots
  SavedClass prov_saved_;  ///< stage-3 delta snapshots
  detail::Worklist worklist_;      ///< reused across deltas (drained = reset)
  std::vector<AsIndex> scratch_;   ///< BFS frontier for invalidation closures
};

}  // namespace bgpcmp::bgp
