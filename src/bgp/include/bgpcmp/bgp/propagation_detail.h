// Internal building blocks of the three-stage Gao-Rexford propagation,
// shared by the full converge (propagation.cpp) and the incremental churn
// engine (churn.cpp). Exposed as a header so the churn engine can retain and
// re-relax the per-class state a full run produces — and so unit tests can
// pin the Worklist's re-entry semantics directly. Not a stable API surface:
// everything here is an implementation detail of the bgp target.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "bgpcmp/bgp/origin.h"
#include "bgpcmp/bgp/route.h"

namespace bgpcmp::bgp::detail {

inline constexpr std::uint32_t kInfLen = std::numeric_limits<std::uint32_t>::max();

/// Best-so-far route of one preference class at one AS.
struct ClassState {
  std::uint32_t len = kInfLen;
  AsIndex next_hop = kNoAs;
  EdgeId via_edge = kNoEdge;

  [[nodiscard]] bool valid() const { return len != kInfLen; }

  friend bool operator==(const ClassState& a, const ClassState& b) {
    return a.len == b.len && a.next_hop == b.next_hop && a.via_edge == b.via_edge;
  }
};

/// True if (len, next-hop ASN) is strictly better than `cur` — BGP's
/// shortest-path-then-lowest-neighbor tie-breaking within a LocalPref class.
inline bool better(const AsGraph& g, std::uint32_t len, AsIndex nh,
                   const ClassState& cur) {
  if (len < cur.len) return true;
  if (len > cur.len) return false;
  return g.node(nh).asn < g.node(cur.next_hop).asn;
}

/// Per-class best-so-far state for every AS; the fixpoint of the three-stage
/// relaxation. select_best() collapses it to the table an AS actually uses.
struct Tables {
  std::vector<ClassState> cust;
  std::vector<ClassState> peer;
  std::vector<ClassState> prov;

  explicit Tables(std::size_t n = 0) : cust(n), peer(n), prov(n) {}
};

/// Length of the route `as` actually selects (class preference first), or
/// kInfLen if unrouted. `origin` always selects itself with length 0.
inline std::uint32_t best_len(const Tables& t, AsIndex as, AsIndex origin) {
  if (as == origin) return 0;
  if (t.cust[as].valid()) return t.cust[as].len;
  if (t.peer[as].valid()) return t.peer[as].len;
  if (t.prov[as].valid()) return t.prov[as].len;
  return kInfLen;
}

/// FIFO worklist over AS indices with membership dedup: pushing an AS that is
/// already queued is a no-op, so each relaxation wave visits a node once. A
/// popped AS may re-enter later (stage 3's provider re-queue path relies on
/// this), so convergence is by monotone relaxation, not single-visit.
class Worklist {
 public:
  explicit Worklist(std::size_t n) : queued_(n, 0) {}

  void push(AsIndex i) {
    if (queued_[i] != 0) return;
    queued_[i] = 1;
    items_.push_back(i);
  }

  [[nodiscard]] bool empty() const { return head_ == items_.size(); }

  AsIndex pop() {
    const AsIndex i = items_[head_++];
    queued_[i] = 0;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
    return i;
  }

 private:
  std::vector<std::uint8_t> queued_;
  std::vector<AsIndex> items_;
  std::size_t head_ = 0;
};

/// Collapse one AS's per-class state to the route it selects: LocalPref class
/// order, already tie-broken within class. Checks the uint32 relaxation
/// length fits BestRoute's uint16 before narrowing — absurd prepend values
/// must fail loudly, not wrap.
[[nodiscard]] BestRoute select_one(const AsGraph& graph, const Tables& t, AsIndex i,
                                   AsIndex origin);

/// Selection over every AS (the full-table form of select_one).
[[nodiscard]] RouteTable select_best(const AsGraph& graph, const Tables& t,
                                     AsIndex origin);

/// Validate an origin spec: real in-range origin, non-negative prepends on
/// edges of the graph. Both propagation entry points and the churn engine
/// call this before touching the spec.
void check_origin(const AsGraph& graph, const OriginSpec& origin);

/// The three-stage relaxation to its least fixpoint, keeping the per-class
/// state (compute_routes is select_best over this).
[[nodiscard]] Tables compute_tables(const AsGraph& graph, const OriginSpec& origin);

}  // namespace bgpcmp::bgp::detail
