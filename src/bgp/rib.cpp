#include "bgpcmp/bgp/rib.h"

#include <algorithm>

#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

std::vector<CandidateRoute> candidate_routes_at(const AsGraph& graph,
                                                const RouteTable& table,
                                                const OriginSpec& origin_spec,
                                                AsIndex viewer) {
  BGPCMP_CHECK_EQ(origin_spec.origin, table.origin(),
                  "RIB dump must use the table's own origin spec");
  std::vector<CandidateRoute> out;
  // CSR walk in node-insertion order: same neighbors, same output order as
  // the allocating neighbors() call this replaced. At most one candidate per
  // incident edge, so one reserve covers the worst case.
  out.reserve(graph.edges_of(viewer).size());
  for (const topo::EdgeId e : graph.edges_of(viewer)) {
    topo::Neighbor nb{graph.other_end(e, viewer), e, graph.role_of_other(e, viewer)};
    CandidateRoute cand;
    cand.neighbor = nb.as;
    cand.edge = nb.edge;
    cand.neighbor_role = nb.role;

    if (nb.as == table.origin()) {
      if (!origin_spec.announces_on(graph, nb.edge)) continue;
      cand.neighbor_class = RouteClass::Origin;
      cand.length =
          static_cast<std::uint16_t>(1 + origin_spec.prepend_on(nb.edge));
      cand.as_path = {nb.as};
      out.push_back(std::move(cand));
      continue;
    }

    const BestRoute& nbest = table.at(nb.as);
    if (!nbest.reachable()) continue;
    // Split horizon: the neighbor's route must not run through the viewer.
    if (nbest.next_hop == viewer) continue;

    // Export policy: the neighbor announces its selected route to the viewer
    // iff the viewer is its customer, or the route is customer-learned.
    const topo::NeighborRole viewer_role_at_neighbor =
        graph.role_of_other(nb.edge, nb.as);
    const bool exports = viewer_role_at_neighbor == topo::NeighborRole::Customer ||
                         nbest.cls == RouteClass::Customer;
    if (!exports) continue;

    auto path = table.path(nb.as);
    if (std::find(path.begin(), path.end(), viewer) != path.end()) continue;

    cand.neighbor_class = nbest.cls;
    cand.length = static_cast<std::uint16_t>(nbest.length + 1);
    cand.as_path = std::move(path);
    out.push_back(std::move(cand));
  }
  std::sort(out.begin(), out.end(), [&](const CandidateRoute& a, const CandidateRoute& b) {
    return graph.node(a.neighbor).asn < graph.node(b.neighbor).asn;
  });
  return out;
}

std::vector<CandidateRoute> candidate_routes_at(const AsGraph& graph,
                                                const RouteTable& table,
                                                AsIndex viewer) {
  return candidate_routes_at(graph, table, OriginSpec::everywhere(table.origin()),
                             viewer);
}

}  // namespace bgpcmp::bgp
