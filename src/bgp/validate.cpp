#include "bgpcmp/bgp/validate.h"

#include <algorithm>

namespace bgpcmp::bgp {

bool is_valley_free(const AsGraph& graph, std::span<const AsIndex> path) {
  if (path.size() < 2) return true;
  // Forwarding-order pattern: Provider* Peer{0,1} Customer*.
  // phase 0 = climbing, phase 1 = crossed the (single) peer hop,
  // phase 2 = descending.
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto edge = graph.find_edge(path[i], path[i + 1]);
    if (!edge) return false;  // non-adjacent hop
    const topo::NeighborRole role = graph.role_of_other(*edge, path[i]);
    switch (role) {
      case topo::NeighborRole::Provider:  // up
        if (phase != 0) return false;
        break;
      case topo::NeighborRole::Peer:  // across
        if (phase >= 1) return false;
        phase = 1;
        break;
      case topo::NeighborRole::Customer:  // down
        phase = 2;
        break;
    }
  }
  return true;
}

bool table_is_consistent(const AsGraph& graph, const RouteTable& table) {
  for (AsIndex i = 0; i < table.size(); ++i) {
    const BestRoute& r = table.at(i);
    if (!r.reachable() || r.cls == RouteClass::Origin) continue;

    // Route class must match the next hop's role.
    const topo::NeighborRole nh_role = graph.role_of_other(r.via_edge, i);
    const RouteClass expected = nh_role == topo::NeighborRole::Customer
                                    ? RouteClass::Customer
                                    : nh_role == topo::NeighborRole::Peer
                                          ? RouteClass::Peer
                                          : RouteClass::Provider;
    if (r.cls != expected) return false;

    // The next hop must actually export its route to us.
    const AsIndex nh = r.next_hop;
    if (nh != table.origin()) {
      const BestRoute& nr = table.at(nh);
      if (!nr.reachable()) return false;
      const topo::NeighborRole we_are = graph.role_of_other(r.via_edge, nh);
      const bool exports = we_are == topo::NeighborRole::Customer ||
                           nr.cls == RouteClass::Customer ||
                           nr.cls == RouteClass::Origin;
      if (!exports) return false;
      if (r.length < nr.length + 1) return false;  // lengths must chain
    }

    // The full path must exist, end at the origin, and be valley-free.
    const auto path = table.path(i);
    if (path.empty() || path.back() != table.origin()) return false;
    if (!is_valley_free(graph, path)) return false;
  }
  return true;
}

}  // namespace bgpcmp::bgp
