#include "bgpcmp/bgp/policy.h"

namespace bgpcmp::bgp {

int egress_rank(topo::NeighborRole role, LinkKind kind) {
  if (role == topo::NeighborRole::Provider) return 2;  // transit last
  // Peers (and customers, were a provider to have them) ranked by link kind.
  return kind == LinkKind::PrivatePeering ? 0 : 1;
}

bool egress_preferred(const AsGraph& graph, const CandidateRoute& a, LinkKind kind_a,
                      const CandidateRoute& b, LinkKind kind_b) {
  const int ra = egress_rank(a.neighbor_role, kind_a);
  const int rb = egress_rank(b.neighbor_role, kind_b);
  if (ra != rb) return ra < rb;
  if (a.length != b.length) return a.length < b.length;
  return graph.node(a.neighbor).asn < graph.node(b.neighbor).asn;
}

}  // namespace bgpcmp::bgp
