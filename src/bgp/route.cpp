#include "bgpcmp/bgp/route.h"

#include "bgpcmp/netbase/check.h"

namespace bgpcmp::bgp {

std::string_view route_class_name(RouteClass c) {
  switch (c) {
    case RouteClass::None: return "none";
    case RouteClass::Origin: return "origin";
    case RouteClass::Customer: return "customer";
    case RouteClass::Peer: return "peer";
    case RouteClass::Provider: return "provider";
  }
  return "unknown";
}

std::vector<AsIndex> RouteTable::path(AsIndex from) const {
  std::vector<AsIndex> out;
  if (!reachable(from)) return out;
  // Every hop contributes at least 1 to the stored route length (prepending
  // adds more), so length+1 bounds the node count: one reserve, no regrowth.
  out.reserve(static_cast<std::size_t>(routes_[from].length) + 1);
  AsIndex cur = from;
  // A forwarding loop would indicate a propagation bug; bound the walk.
  for (std::size_t steps = 0; steps <= routes_.size(); ++steps) {
    out.push_back(cur);
    if (cur == origin_) return out;
    cur = routes_[cur].next_hop;
    BGPCMP_CHECK_NE(cur, kNoAs, "route table has a gap on the path toward the origin");
  }
  BGPCMP_FAIL("forwarding loop in route table");
  return {};
}

std::vector<EdgeId> RouteTable::path_edges(AsIndex from) const {
  std::vector<EdgeId> out;
  if (!reachable(from)) return out;
  out.reserve(routes_[from].length);  // one edge per hop, <= stored length
  AsIndex cur = from;
  for (std::size_t steps = 0; steps <= routes_.size(); ++steps) {
    if (cur == origin_) return out;
    out.push_back(routes_[cur].via_edge);
    cur = routes_[cur].next_hop;
    BGPCMP_CHECK_NE(cur, kNoAs, "route table has a gap on the path toward the origin");
  }
  BGPCMP_FAIL("forwarding loop in route table");
  return {};
}

}  // namespace bgpcmp::bgp
