#include "bgpcmp/core/scenario.h"

#include "bgpcmp/netbase/rng.h"
#include "bgpcmp/topology/world_cache.h"

namespace bgpcmp::core {

ScenarioConfig ScenarioConfig::with_master_seed(std::uint64_t seed) {
  ScenarioConfig cfg;
  Rng root{seed};
  cfg.internet.seed = root.fork("internet").base_seed();
  cfg.provider.seed = root.fork("provider").base_seed();
  cfg.clients.seed = root.fork("clients").base_seed();
  cfg.demand.seed = root.fork("demand").base_seed();
  return cfg;
}

ScenarioConfig ScenarioConfig::facebook_like() { return ScenarioConfig{}; }

ScenarioConfig ScenarioConfig::microsoft_like() {
  ScenarioConfig cfg;
  cfg.provider.name = "MSCDN";
  cfg.provider.asn = 60002;
  cfg.provider.seed = 22;
  // A 2015-era anycast CDN peered far less richly than today's edge
  // providers; sparse interconnection is what makes BGP catchments miss.
  cfg.provider.pni_eyeball_fraction = 0.70;
  cfg.provider.ixp_peer_prob = 0.45;
  cfg.provider.public_session_density = 0.40;
  cfg.provider.pni_max_links = 8;
  cfg.provider.pop_count = 26;
  cfg.provider.transit_session_pops = 6;
  return cfg;
}

ScenarioConfig ScenarioConfig::google_like() {
  ScenarioConfig cfg;
  cfg.provider.name = "CloudX";
  cfg.provider.asn = 60003;
  cfg.provider.seed = 23;
  cfg.provider.pop_count = 64;
  // The §3.3 campaign runs for months; keep congestion events flowing for
  // its whole duration.
  cfg.congestion.horizon_days = 70.0;
  cfg.provider.pni_eyeball_fraction = 0.60;
  cfg.provider.ixp_peer_prob = 0.50;
  cfg.provider.transit_provider_count = 2;
  return cfg;
}

Scenario::Scenario(ScenarioConfig cfg, topo::Internet world)
    : internet(std::move(world)),
      provider(cdn::ContentProvider::attach(internet, cfg.provider)),
      clients(traffic::ClientBase::generate(internet, cfg.clients)),
      demand(&clients, internet.cities, cfg.demand),
      congestion(&internet.graph, internet.cities, cfg.congestion,
                 cfg.internet.seed ^ 0x9e3779b97f4a7c15ULL),
      latency(&internet.graph, internet.cities, &congestion, cfg.latency),
      config(std::move(cfg)) {}

Scenario::Scenario(ScenarioConfig cfg, topo::Internet world, cdn::ContentProvider cp,
                   traffic::ClientBase cb)
    : internet(std::move(world)),
      provider(std::move(cp)),
      clients(std::move(cb)),
      demand(&clients, internet.cities, cfg.demand),
      congestion(&internet.graph, internet.cities, cfg.congestion,
                 cfg.internet.seed ^ 0x9e3779b97f4a7c15ULL),
      latency(&internet.graph, internet.cities, &congestion, cfg.latency),
      config(std::move(cfg)) {}

std::unique_ptr<Scenario> Scenario::restore(ScenarioConfig config, topo::Internet world,
                                            cdn::ContentProvider provider,
                                            traffic::ClientBase clients) {
  return std::unique_ptr<Scenario>(new Scenario(
      std::move(config), std::move(world), std::move(provider), std::move(clients)));
}

std::unique_ptr<Scenario> Scenario::make(const ScenarioConfig& config) {
  return std::unique_ptr<Scenario>(
      new Scenario(config, topo::build_internet(config.internet)));
}

std::unique_ptr<Scenario> Scenario::make_cached(const ScenarioConfig& config) {
  // Copy the immutable snapshot: attaching the provider mutates the graph.
  // The copy inherits the snapshot's pre-warmed CSR edge index and drops it
  // on its first mutation.
  auto world = topo::WorldCache::global().get(config.internet);
  return std::unique_ptr<Scenario>(new Scenario(config, topo::Internet(*world)));
}

}  // namespace bgpcmp::core
