#include "bgpcmp/core/snapshot.h"

#include <bit>
#include <utility>

#include "bgpcmp/netbase/check.h"
#include "bgpcmp/topology/world_snapshot.h"

namespace bgpcmp::core {
namespace {

constexpr std::uint32_t kServingSections =
    topo::kSectionWorld | topo::kSectionProvider | topo::kSectionClients |
    topo::kSectionTables;

/// Incremental FNV-1a over typed fields; the declaration-order walk below is
/// the fingerprint's definition.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void byte(unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  void boolean(bool v) { byte(v ? 1 : 0); }
};

}  // namespace

std::uint64_t scenario_config_fingerprint(const ScenarioConfig& config) {
  Fnv fp;
  // internet: the existing non-seed knob fingerprint (with its own field-count
  // tripwire test) plus the seed.
  fp.u64(topo::internet_config_fingerprint(config.internet));
  fp.u64(config.internet.seed);
  // provider, declaration order.
  const auto& p = config.provider;
  fp.u64(p.seed);
  fp.str(p.name);
  fp.u64(p.asn);
  fp.u64(p.pop_count);
  fp.u64(p.extra_pop_cities.size());
  for (const auto city : p.extra_pop_cities) fp.str(city);
  fp.f64(p.pni_eyeball_fraction);
  fp.f64(p.ixp_peer_prob);
  fp.f64(p.transit_peer_scale);
  fp.f64(p.public_session_density);
  fp.u64(p.pni_max_links);
  fp.i64(p.transit_provider_count);
  fp.u64(p.transit_session_pops);
  fp.f64(p.pni_capacity_gbps);
  fp.f64(p.public_capacity_gbps);
  fp.f64(p.transit_capacity_gbps);
  fp.f64(p.backbone_inflation);
  // clients.
  const auto& c = config.clients;
  fp.u64(c.seed);
  fp.i64(c.prefixes_per_eyeball_city);
  fp.boolean(c.include_stubs);
  fp.f64(c.access_base_rtt_min_ms);
  fp.f64(c.access_base_rtt_max_ms);
  // demand.
  const auto& d = config.demand;
  fp.u64(d.seed);
  fp.f64(d.zipf_exponent);
  fp.f64(d.mean_bytes_per_window);
  fp.f64(d.diurnal_amplitude);
  // congestion.
  const auto& g = config.congestion;
  fp.f64(g.horizon_days);
  fp.f64(g.base_util_min);
  fp.f64(g.base_util_max);
  fp.f64(g.diurnal_amplitude);
  fp.f64(g.event_rate_per_day);
  fp.f64(g.event_duration_mean_hours);
  fp.f64(g.event_extra_util_mean);
  fp.f64(g.queue_scale_ms);
  fp.f64(g.queue_cap_ms);
  fp.f64(g.access_event_rate_per_day);
  fp.f64(g.access_event_duration_mean_hours);
  fp.f64(g.access_event_delay_mean_ms);
  fp.f64(g.access_diurnal_peak_ms);
  // latency.
  fp.f64(config.latency.per_hop_processing_ms);
  return fp.h;
}

void save_serving_snapshot(const std::string& path, const Scenario& scenario,
                           std::span<const topo::AsIndex> warmed,
                           const bgp::RouteCache& tables) {
  topo::SnapshotWriter w;
  topo::serialize_internet(scenario.internet, w);

  // Provider section.
  w.u32(scenario.provider.as_index());
  const auto pops = scenario.provider.pops();
  w.u32(static_cast<std::uint32_t>(pops.size()));
  for (const cdn::Pop& pop : pops) {
    w.u32(pop.id);
    w.u16(pop.city);
    w.u32(static_cast<std::uint32_t>(pop.links.size()));
    for (const topo::LinkId l : pop.links) w.u32(l);
  }

  // Clients section.
  w.u32(static_cast<std::uint32_t>(scenario.clients.size()));
  for (const traffic::ClientPrefix& client : scenario.clients.prefixes()) {
    w.u32(client.prefix.network().bits());
    w.u8(client.prefix.length());
    w.u32(client.origin_as);
    w.u16(client.city);
    w.f64(client.user_weight);
    w.f64(client.access.base_rtt_ms);
  }

  // Tables section: every warmed origin's full per-AS route rows.
  w.u32(static_cast<std::uint32_t>(warmed.size()));
  for (const topo::AsIndex origin : warmed) {
    const bgp::RouteTable* table = tables.find(origin);
    BGPCMP_CHECK(table != nullptr, "saving a serving snapshot with an unwarmed origin");
    w.u32(origin);
    w.u32(static_cast<std::uint32_t>(table->size()));
    for (topo::AsIndex as = 0; as < table->size(); ++as) {
      const bgp::BestRoute& route = table->at(as);
      w.u8(static_cast<std::uint8_t>(route.cls));
      w.u16(route.length);
      w.u32(route.next_hop);
      w.u32(route.via_edge);
    }
  }

  topo::SnapshotHeader header;
  header.sections = kServingSections;
  header.config_fp = scenario_config_fingerprint(scenario.config);
  header.world_fp = topo::internet_fingerprint(scenario.internet);
  topo::write_snapshot_file(path, header, w.bytes());
}

ServingState load_serving_snapshot(const std::string& path,
                                   const ScenarioConfig& config,
                                   topo::SnapshotVerify verify) {
  const topo::SnapshotFile f = topo::read_snapshot_file(path);
  BGPCMP_CHECK_EQ(f.header().sections, kServingSections,
                  "expected a full serving snapshot");
  BGPCMP_CHECK_EQ(f.header().config_fp, scenario_config_fingerprint(config),
                  "serving snapshot was built from a different ScenarioConfig");
  topo::SnapshotReader r(f.payload());

  topo::Internet world = topo::deserialize_internet(r);
  if (verify == topo::SnapshotVerify::kFull) {
    BGPCMP_CHECK_EQ(topo::internet_fingerprint(world), f.header().world_fp,
                    "materialized world does not match the stored fingerprint");
  }

  // Provider: the AS and its links are already in the replayed world; restore
  // only the provider-side bookkeeping and sanity-bind it to the config.
  const topo::AsIndex provider_as = r.u32();
  BGPCMP_CHECK_LT(provider_as, world.graph.as_count(),
                  "snapshot provider AS outside the world");
  BGPCMP_CHECK_EQ(world.graph.node(provider_as).asn.value(), config.provider.asn,
                  "snapshot provider AS does not carry the configured ASN");
  const std::uint32_t pop_count = r.u32();
  std::vector<cdn::Pop> pops;
  pops.reserve(pop_count);
  for (std::uint32_t i = 0; i < pop_count; ++i) {
    cdn::Pop pop;
    pop.id = r.u32();
    pop.city = r.u16();
    const std::uint32_t links = r.u32();
    pop.links.reserve(links);
    for (std::uint32_t l = 0; l < links; ++l) {
      const topo::LinkId link = r.u32();
      BGPCMP_CHECK_LT(link, world.graph.link_count(), "snapshot PoP link out of range");
      pop.links.push_back(link);
    }
    pops.push_back(std::move(pop));
  }
  cdn::ContentProvider provider =
      cdn::ContentProvider::restore(provider_as, std::move(pops), config.provider);

  // Clients.
  const std::uint32_t prefix_count = r.u32();
  std::vector<traffic::ClientPrefix> prefixes;
  prefixes.reserve(prefix_count);
  for (std::uint32_t i = 0; i < prefix_count; ++i) {
    traffic::ClientPrefix client;
    const std::uint32_t bits = r.u32();
    const std::uint8_t length = r.u8();
    BGPCMP_CHECK_LE(length, 32, "snapshot prefix length out of range");
    client.prefix = Prefix::make(Ipv4Address{bits}, length);
    client.origin_as = r.u32();
    BGPCMP_CHECK_LT(client.origin_as, world.graph.as_count(),
                    "snapshot client origin out of range");
    client.city = r.u16();
    client.user_weight = r.f64();
    client.access.base_rtt_ms = r.f64();
    prefixes.push_back(client);
  }
  traffic::ClientBase clients = traffic::ClientBase::restore(std::move(prefixes));

  ServingState state;
  state.scenario = Scenario::restore(config, std::move(world), std::move(provider),
                                     std::move(clients));
  // Tables decode against the scenario's (now final) graph address.
  const topo::AsGraph* graph = &state.scenario->internet.graph;
  const std::uint32_t table_count = r.u32();
  state.warmed.reserve(table_count);
  state.tables.reserve(table_count);
  for (std::uint32_t i = 0; i < table_count; ++i) {
    const topo::AsIndex origin = r.u32();
    BGPCMP_CHECK_LT(origin, graph->as_count(), "snapshot table origin out of range");
    const std::uint32_t rows = r.u32();
    BGPCMP_CHECK_EQ(rows, graph->as_count(),
                    "snapshot route table does not cover every AS");
    std::vector<bgp::BestRoute> routes;
    routes.reserve(rows);
    for (std::uint32_t as = 0; as < rows; ++as) {
      bgp::BestRoute route;
      const std::uint8_t cls = r.u8();
      BGPCMP_CHECK_LE(cls, static_cast<std::uint8_t>(bgp::RouteClass::Provider),
                      "snapshot route class out of range");
      route.cls = static_cast<bgp::RouteClass>(cls);
      route.length = r.u16();
      route.next_hop = r.u32();
      route.via_edge = r.u32();
      routes.push_back(route);
    }
    state.warmed.push_back(origin);
    state.tables.emplace_back(graph, origin, std::move(routes));
  }
  BGPCMP_CHECK(r.done(), "trailing bytes after the tables section");
  return state;
}

}  // namespace bgpcmp::core
