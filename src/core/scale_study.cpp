#include "bgpcmp/core/scale_study.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/core/fingerprint.h"
#include "bgpcmp/core/pop_pair.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/latency/rtt_sampler.h"
#include "bgpcmp/netbase/check.h"

namespace bgpcmp::core {

ScaleWorld::ScaleWorld(ScenarioConfig cfg, topo::Internet world)
    : internet(std::move(world)),
      provider(cdn::ContentProvider::attach(internet, cfg.provider)),
      congestion(&internet.graph, internet.cities, cfg.congestion,
                 cfg.internet.seed ^ 0x9e3779b97f4a7c15ULL),
      latency(&internet.graph, internet.cities, &congestion, cfg.latency),
      config(std::move(cfg)) {}

std::unique_ptr<ScaleWorld> ScaleWorld::make(const ScenarioConfig& config) {
  return std::unique_ptr<ScaleWorld>(
      new ScaleWorld(config, topo::build_internet(config.internet)));
}

std::unique_ptr<ScaleWorld> ScaleWorld::adopt(ScenarioConfig config,
                                              topo::Internet world) {
  return std::unique_ptr<ScaleWorld>(new ScaleWorld(std::move(config), std::move(world)));
}

namespace {

void append_raw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

/// Canonical bytes of one measured series: every field, raw, so the digest
/// pins the series bit-for-bit across chunk sizes, shard counts, and
/// processes.
void append_series(std::string& out, const PopPrefixSeries& s) {
  append_raw(out, &s.pop, sizeof s.pop);
  append_raw(out, &s.prefix, sizeof s.prefix);
  for (const EgressRouteInfo& r : s.routes) {
    append_raw(out, &r.neighbor, sizeof r.neighbor);
    append_raw(out, &r.role, sizeof r.role);
    append_raw(out, &r.kind, sizeof r.kind);
    append_raw(out, &r.link, sizeof r.link);
    append_raw(out, &r.as_path_len, sizeof r.as_path_len);
  }
  if (!s.volume.empty()) {
    append_raw(out, s.volume.data(), s.volume.size() * sizeof(float));
  }
  for (const auto& route_medians : s.medians) {
    append_raw(out, route_medians.data(), route_medians.size() * sizeof(float));
  }
  if (!s.ci_lower.empty()) {
    append_raw(out, s.ci_lower.data(), s.ci_lower.size() * sizeof(float));
    append_raw(out, s.ci_upper.data(), s.ci_upper.size() * sizeof(float));
  }
}

}  // namespace

std::string ScaleChunkResult::line() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "chunk %" PRIu32 " pairs %" PRIu32
                                 " digest %016" PRIx64 " points %zu",
                chunk, pairs, series_digest, fig1.size());
  return buf;
}

ScaleChunkResult run_scale_chunk(const ScaleWorld& world,
                                 const ScaleStudyConfig& config,
                                 const std::vector<TimeWindow>& windows,
                                 const traffic::ClientStream& stream,
                                 traffic::DemandStream& demand, std::size_t chunk) {
  const auto& graph = world.internet.graph;
  const topo::CityDb& db = world.internet.city_db();

  const traffic::ClientChunk window = stream.chunk(chunk);
  const std::vector<double> popularity = demand.next(window);

  // Warm a route cache over only this chunk's origins — the whole point:
  // per-chunk table memory is bounded by chunk_origins, not the world.
  bgp::RouteCache tables{&graph};
  tables.warm(stream.chunk_origin_ases(chunk), exec::global_pool());

  // Plan and measure with the code the eager study runs (pop_pair.h); per-AS
  // route tables and per-pair RNG streams make every byte independent of
  // which chunk — or process — computes the pair.
  auto planned = exec::parallel_map(window.prefixes.size(), [&](std::size_t i) {
    const auto& client = window.prefixes[i];
    const bgp::RouteTable* table = tables.find(client.origin_as);
    return plan_pop_pair(graph, db, world.provider, client, window.id(i), *table,
                         config.study.top_k_routes);
  });
  std::vector<PairPlan> plans;
  for (auto& plan : planned) {
    if (plan.measurable()) plans.push_back(std::move(plan));
  }

  const lat::RttSampler sampler;
  const Rng root{config.study.seed};
  const auto series = exec::parallel_map(plans.size(), [&](std::size_t p) {
    const PairPlan& plan = plans[p];
    const std::size_t i = plan.prefix - window.first_prefix;
    const auto& client = window.prefixes[i];
    return measure_pop_pair(plan, client, windows, popularity[i],
                            db.at(client.city).location.lon_deg, world.config.demand,
                            world.latency, sampler, root, config.study);
  });

  ScaleChunkResult out;
  out.chunk = static_cast<std::uint32_t>(chunk);
  out.pairs = static_cast<std::uint32_t>(series.size());
  std::string bytes;
  for (const PopPrefixSeries& s : series) {
    append_series(bytes, s);
    for (std::size_t w = 0; w < windows.size(); ++w) {
      out.fig1.push_back({static_cast<double>(s.diff(w)),
                          static_cast<double>(s.volume[w])});
    }
  }
  out.series_digest = fnv1a64(bytes);
  return out;
}

ScaleStudyResult run_scale_study(const ScaleWorld& world,
                                 const ScaleStudyConfig& config) {
  ScaleStudyResult result;
  result.windows = study_windows(config.study);
  const traffic::ClientStream stream{&world.internet, world.config.clients,
                                     config.chunk_origins};
  traffic::DemandStream demand{world.config.demand};
  result.chunks.reserve(stream.chunk_count());
  for (std::size_t c = 0; c < stream.chunk_count(); ++c) {
    result.chunks.push_back(
        run_scale_chunk(world, config, result.windows, stream, demand, c));
  }
  return result;
}

stats::WeightedCdf ScaleStudyResult::fig1_cdf() const {
  stats::WeightedCdf cdf;
  for (const auto& chunk : chunks) {
    for (const auto& obs : chunk.fig1) cdf.add(obs.value, obs.weight);
  }
  return cdf;
}

double ScaleStudyResult::improvable_traffic_fraction(double threshold_ms) const {
  // One flat pass in global pair order: the identical addition sequence to
  // PopStudyResult::improvable_traffic_fraction, so the fractions are
  // bit-equal, not merely close.
  double improvable = 0.0;
  double total = 0.0;
  for (const auto& chunk : chunks) {
    for (const auto& obs : chunk.fig1) {
      total += obs.weight;
      if (obs.value >= threshold_ms) improvable += obs.weight;
    }
  }
  return total > 0.0 ? improvable / total : 0.0;
}

std::uint64_t ScaleStudyResult::fingerprint() const {
  std::string joined;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    BGPCMP_CHECK_EQ(chunks[c].chunk, c, "scale study chunks out of order");
    joined += chunks[c].line();
    joined += '\n';
  }
  return fnv1a64(joined);
}

std::size_t ScaleStudyResult::pair_count() const {
  std::size_t pairs = 0;
  for (const auto& chunk : chunks) pairs += chunk.pairs;
  return pairs;
}

}  // namespace bgpcmp::core
