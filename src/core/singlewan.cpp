#include "bgpcmp/core/singlewan.h"

#include <algorithm>

#include "bgpcmp/netbase/geo.h"
#include "bgpcmp/stats/correlation.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

SingleWanResult run_single_wan_study(const Scenario& scenario,
                                     const wan::CloudTiers& tiers,
                                     const SingleWanConfig& config) {
  SingleWanResult result;
  const auto& graph = scenario.internet.graph;
  const topo::CityDb& db = scenario.internet.city_db();
  Rng rng = Rng{config.seed}.fork("sample");

  std::vector<double> weights;
  weights.reserve(scenario.clients.size());
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    weights.push_back(scenario.clients.at(id).user_weight);
  }

  // Late exit by the networks carrying traffic toward the cloud: Tier-1s and
  // the regional transits that hand off to them.
  auto t1_cold = wan::exit_override_for_class(graph, topo::AsClass::Tier1,
                                              lat::ExitStrategy::ColdPotato);
  for (const auto& [as, strat] : wan::exit_override_for_class(
           graph, topo::AsClass::Transit, lat::ExitStrategy::ColdPotato)) {
    t1_cold.emplace(as, strat);
  }

  std::vector<double> fractions;
  std::vector<double> inflations;
  std::vector<double> late_exit_deltas;
  std::vector<double> india_prem;
  std::vector<double> india_stan;
  std::vector<double> world_prem;
  std::vector<double> world_stan;

  for (int i = 0; i < config.sample_clients; ++i) {
    const auto id = static_cast<traffic::PrefixId>(rng.weighted_index(weights));
    const auto& client = scenario.clients.at(id);
    const auto standard = tiers.standard(client);
    const auto premium = tiers.premium(client);
    if (!standard.valid() || !premium.valid()) continue;
    const SimTime t = config.measure_time;

    const double stan_ms = tiers.rtt(standard, scenario.latency, t, client).value();
    const double prem_ms = tiers.rtt(premium, scenario.latency, t, client).value();

    // Geodesic floor: straight-fiber RTT to the DC plus the client last mile.
    const double floor_ms =
        rtt_floor(db.distance(client.city, tiers.dc_city())).value() +
        client.access.base_rtt_ms;
    if (floor_ms <= 0.0) continue;
    fractions.push_back(wan::largest_single_network_fraction(standard.access_path));
    inflations.push_back(stan_ms / floor_ms);

    // Late-exit ablation: re-realize the same standard-tier AS path with
    // Tier-1s doing cold potato toward the DC.
    {
      const auto as_path = tiers.standard_table().path(client.origin_as);
      lat::GeoPathOptions opts;
      opts.origin_scope = &tiers.standard_spec();
      opts.exit_override = t1_cold;
      const auto cold_path = lat::build_geo_path(graph, db, as_path, client.city,
                                                 tiers.dc_city(), opts);
      if (cold_path.valid()) {
        const double cold_ms = scenario.latency
                                   .rtt(cold_path, t, client.access,
                                        client.origin_as, client.city)
                                   .total()
                                   .value();
        late_exit_deltas.push_back(stan_ms - cold_ms);
      }
    }

    world_prem.push_back(prem_ms);
    world_stan.push_back(stan_ms);
    if (db.at(client.city).country == "India") {
      india_prem.push_back(prem_ms);
      india_stan.push_back(stan_ms);
    }
  }

  // Bin median inflation by single-network fraction.
  for (std::size_t b = 0; b < config.bins; ++b) {
    SingleWanBin bin;
    bin.lo = static_cast<double>(b) / static_cast<double>(config.bins);
    bin.hi = static_cast<double>(b + 1) / static_cast<double>(config.bins);
    std::vector<double> members;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      const bool last = b + 1 == config.bins;
      if (fractions[i] >= bin.lo && (fractions[i] < bin.hi || last)) {
        members.push_back(inflations[i]);
      }
    }
    bin.count = members.size();
    if (!members.empty()) bin.median_inflation = stats::median(members);
    result.bins.push_back(bin);
  }

  result.correlation = stats::pearson(fractions, inflations);

  if (!late_exit_deltas.empty()) {
    result.late_exit_median_improvement_ms = stats::median(late_exit_deltas);
  }
  if (!world_prem.empty()) {
    result.world_premium_ms = stats::median(world_prem);
    result.world_standard_ms = stats::median(world_stan);
  }
  if (!india_prem.empty()) {
    result.india_premium_ms = stats::median(india_prem);
    result.india_standard_ms = stats::median(india_stan);
    result.india_samples = india_prem.size();
  }
  return result;
}

}  // namespace bgpcmp::core
