#include "bgpcmp/core/shard.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "bgpcmp/core/fingerprint.h"
#include "bgpcmp/netbase/check.h"

namespace bgpcmp::core {

ShardRange shard_range(std::size_t count, int shards, int index) {
  BGPCMP_CHECK_GT(shards, 0, "shard count must be positive");
  BGPCMP_CHECK_GE(index, 0, "shard index must be non-negative");
  BGPCMP_CHECK_LT(index, shards, "shard index outside shard count");
  const std::size_t n = static_cast<std::size_t>(shards);
  const std::size_t i = static_cast<std::size_t>(index);
  const std::size_t base = count / n;
  const std::size_t extra = count % n;
  ShardRange range;
  range.begin = i * base + std::min(i, extra);
  range.end = range.begin + base + (i < extra ? 1 : 0);
  return range;
}

std::uint64_t merge_fingerprint(std::span<const std::string> lines) {
  std::string joined;
  for (const auto& line : lines) {
    joined += line;
    joined += '\n';
  }
  return fnv1a64(joined);
}

std::string encode_scale_chunk(const ScaleChunkResult& chunk) {
  std::string out = chunk.line();
  out += '\n';
  char buf[64];
  for (const auto& obs : chunk.fig1) {
    // Hexfloat: round-trips the doubles exactly, so a decoded merge is
    // byte-identical to the in-process result.
    std::snprintf(buf, sizeof buf, "p %a %a\n", obs.value, obs.weight);
    out += buf;
  }
  return out;
}

std::vector<ScaleChunkResult> decode_scale_chunks(std::string_view text) {
  std::vector<ScaleChunkResult> chunks;
  std::vector<std::uint64_t> declared_points;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    BGPCMP_CHECK(eol != std::string_view::npos, "unterminated shard chunk line");
    const std::string line{text.substr(pos, eol - pos)};
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == 'p') {
      BGPCMP_CHECK(!chunks.empty(), "shard point line before any chunk header");
      const char* s = line.c_str() + 1;
      char* next = nullptr;
      const double value = std::strtod(s, &next);
      BGPCMP_CHECK(next != s, "malformed shard point value: ", line);
      s = next;
      const double weight = std::strtod(s, &next);
      BGPCMP_CHECK(next != s, "malformed shard point weight: ", line);
      chunks.back().fig1.push_back({value, weight});
      continue;
    }
    ScaleChunkResult chunk;
    std::uint64_t points = 0;
    const int fields =
        std::sscanf(line.c_str(), "chunk %" SCNu32 " pairs %" SCNu32
                                  " digest %016" SCNx64 " points %" SCNu64,
                    &chunk.chunk, &chunk.pairs, &chunk.series_digest, &points);
    BGPCMP_CHECK_EQ(fields, 4, "malformed shard chunk header: ", line);
    chunk.fig1.reserve(points);
    chunks.push_back(std::move(chunk));
    declared_points.push_back(points);
  }
  // The header's point count doubles as a transport checksum: a truncated
  // worker file fails here instead of merging into a thinner study.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    BGPCMP_CHECK_EQ(chunks[c].fig1.size(), declared_points[c],
                    "shard chunk point count mismatch, chunk ", chunks[c].chunk);
  }
  return chunks;
}

ScaleStudyResult merge_scale_chunks(std::vector<ScaleChunkResult> chunks,
                                    std::size_t chunk_count,
                                    std::vector<TimeWindow> windows) {
  std::sort(chunks.begin(), chunks.end(),
            [](const ScaleChunkResult& a, const ScaleChunkResult& b) {
              return a.chunk < b.chunk;
            });
  BGPCMP_CHECK_EQ(chunks.size(), chunk_count,
                  "sharded study lost or duplicated chunks");
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    BGPCMP_CHECK_EQ(chunks[c].chunk, c, "sharded study chunk ids not contiguous");
  }
  ScaleStudyResult result;
  result.windows = std::move(windows);
  result.chunks = std::move(chunks);
  return result;
}

}  // namespace bgpcmp::core
