#include "bgpcmp/core/fingerprint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "bgpcmp/bgp/propagation.h"
#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/bgp/table_dump.h"
#include "bgpcmp/cdn/anycast_cdn.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/core/report.h"
#include "bgpcmp/core/serving.h"
#include "bgpcmp/core/snapshot.h"
#include "bgpcmp/core/study_anycast.h"
#include "bgpcmp/core/study_pop.h"
#include "bgpcmp/core/study_wan.h"
#include "bgpcmp/stats/table.h"
#include "bgpcmp/wan/tiers.h"

namespace bgpcmp::core {
namespace {

// Sample grid shared by the demand / latency probes below: a handful of
// prefixes spread across the population, at fixed simulation instants.
constexpr std::size_t kSamplePrefixes = 32;
constexpr double kSampleHours[] = {0.5, 7.25, 13.0, 21.75};

/// The "ases=... ixps=N" counts prefix shared by the scenario and
/// topology-only renderings (the scenario one appends " clients=N" before the
/// newline, so existing fingerprints are unchanged).
std::string topology_counts(const topo::Internet& internet) {
  const auto& g = internet.graph;
  return "ases=" + std::to_string(g.as_count()) +
         " edges=" + std::to_string(g.edge_count()) +
         " links=" + std::to_string(g.link_count()) +
         " ixps=" + std::to_string(internet.ixps.size());
}

std::string per_class_table(const topo::AsGraph& g) {
  stats::Table t{{"class", "count", "mean degree", "mean presence"}};
  for (const auto cls :
       {topo::AsClass::Tier1, topo::AsClass::Transit, topo::AsClass::Eyeball,
        topo::AsClass::Stub, topo::AsClass::Content}) {
    const auto members = g.of_class(cls);
    if (members.empty()) continue;
    double degree = 0.0;
    double presence = 0.0;
    for (const auto m : members) {
      degree += static_cast<double>(g.node(m).edges.size());
      presence += static_cast<double>(g.node(m).presence.size());
    }
    const auto n = static_cast<double>(members.size());
    t.add_row({std::string(topo::as_class_name(cls)), std::to_string(members.size()),
               stats::fmt(degree / n, 3), stats::fmt(presence / n, 3)});
  }
  return t.render();
}

void append_topology(const Scenario& sc, std::string& out) {
  out += banner("topology");
  out += topology_counts(sc.internet) +
         " clients=" + std::to_string(sc.clients.size()) + "\n";
  out += per_class_table(sc.internet.graph);
}

void append_routes(const Scenario& sc, std::string& out) {
  const auto& g = sc.internet.graph;
  out += banner("provider routes");
  const auto table = bgp::compute_routes(g, sc.provider.as_index());
  out += bgp::dump_table(g, table, /*limit=*/40);
}

void append_catchment(const Scenario& sc, const cdn::AnycastCdn& cdn,
                      std::string& out) {
  out += banner("anycast catchment");
  const auto& db = sc.internet.city_db();
  std::map<cdn::PopId, std::pair<double, std::size_t>> per_pop;
  double total = 0.0;
  for (traffic::PrefixId id = 0; id < sc.clients.size(); ++id) {
    const auto route = cdn.anycast_route(sc.clients.at(id));
    if (!route.valid()) continue;
    per_pop[route.pop].first += sc.clients.at(id).user_weight;
    per_pop[route.pop].second += 1;
    total += sc.clients.at(id).user_weight;
  }
  stats::Table t{{"PoP", "user share", "client /24s"}};
  for (const auto& [pop, acc] : per_pop) {
    t.add_row({std::string(db.at(sc.provider.pop(pop).city).name),
               stats::fmt(100.0 * acc.first / total, 4),
               std::to_string(acc.second)});
  }
  out += t.render();
}

void append_demand_and_latency(const Scenario& sc, const cdn::AnycastCdn& cdn,
                               std::string& out) {
  out += banner("demand and latency samples");
  const std::size_t stride =
      sc.clients.size() > kSamplePrefixes ? sc.clients.size() / kSamplePrefixes : 1;
  stats::Table t{{"prefix", "popularity", "volume@13h", "rtt (ms)", "bw (gbps)"}};
  for (traffic::PrefixId id = 0; id < sc.clients.size(); id += stride) {
    const auto& client = sc.clients.at(id);
    std::string rtts;
    std::string bw = "-";
    const auto route = cdn.anycast_route(client);
    if (route.valid()) {
      for (const double h : kSampleHours) {
        const auto breakdown =
            sc.latency.rtt(route.path, SimTime::hours(h), client.access,
                           client.origin_as, client.city);
        if (!rtts.empty()) rtts += "/";
        rtts += stats::fmt(breakdown.total().value(), 3);
      }
      bw = stats::fmt(
          sc.latency.available_bandwidth(route.path, SimTime::hours(13.0)).value(),
          3);
    }
    t.add_row({client.prefix.str(), stats::fmt(sc.demand.popularity(id), 6),
               stats::fmt(sc.demand.volume(id, SimTime::hours(13.0)).value(), 1),
               rtts, bw});
  }
  out += t.render();
}

// Scaled-down study runs: deep enough to flow through every study code path,
// small enough that auditing the whole registry stays interactive.
void append_pop_study(const Scenario& sc, std::string& out) {
  out += banner("pop study (scaled down)");
  PopStudyConfig cfg;
  cfg.days = 1.0;
  cfg.window_stride = 8;
  cfg.top_k_routes = 2;
  cfg.bootstrap.resamples = 20;
  const auto result = run_pop_study(sc, cfg);
  out += "series=" + std::to_string(result.series.size()) +
         " windows=" + std::to_string(result.windows.size()) + "\n";
  const auto cdf = result.fig1_cdf();
  if (cdf.count() > 0) {
    out += render_cdfs("diff_ms", {"fig1"}, {&cdf}, -20.0, 20.0, 11);
  }
  out += headline("improvable traffic fraction",
                  result.improvable_traffic_fraction(5.0));
}

void append_anycast_study(const Scenario& sc, const cdn::AnycastCdn& cdn,
                          std::string& out) {
  out += banner("anycast study (scaled down)");
  AnycastStudyConfig cfg;
  cfg.beacon_rounds = 1;
  cfg.eval_windows = 2;
  const auto result = run_anycast_study(sc, cdn, cfg);
  out += render_cdfs("gap_ms", {"world"}, {&result.fig3_world}, 0.0, 100.0, 11,
                     /*ccdf=*/true);
  out += headline("within 10ms", result.frac_within_10ms);
  out += headline("unicast 100ms faster", result.frac_unicast_100ms_faster);
  out += headline("fig4 improved", result.fig4_improved_fraction);
  out += headline("fig4 worse", result.fig4_worse_fraction);
}

void append_wan_study(const Scenario& sc, std::string& out) {
  out += banner("wan study (scaled down)");
  wan::CloudTiers tiers{&sc.internet, &sc.provider};
  WanStudyConfig cfg;
  cfg.fleet.daily_vantage_points = 60;
  cfg.fleet.rounds_per_day = 2;
  cfg.fleet.pings_per_measurement = 2;
  cfg.campaign.days = 2.0;
  cfg.min_country_samples = 5;
  const auto result = run_wan_study(sc, tiers, cfg);
  out += "samples=" + std::to_string(result.total_samples) + "/" +
         std::to_string(result.filtered_samples) + "\n";
  stats::Table t{{"country", "median S-P (ms)", "samples"}};
  for (const auto& row : result.countries) {
    t.add_row({row.country, stats::fmt(row.median_diff_ms, 4),
               std::to_string(row.samples)});
  }
  out += t.render();
  out += headline("premium near ingress", result.premium_ingress_near_fraction);
  out += headline("standard near ingress", result.standard_ingress_near_fraction);
}

/// Deterministic churn drive: warm a RouteCache over strided eyeball origins,
/// then push three structured event waves (withdraw, restore+prepend,
/// flap+clear) through the parallel reconverge path. Events are derived from
/// CSR edge order — no RNG — so two runs diverge only if the delta code
/// leaks scheduling or iteration order into results.
std::string render_churn_tables(const ScenarioConfig& config) {
  const auto internet = topo::build_internet(config.internet);
  const auto& g = internet.graph;
  std::string out;
  out += banner("churn (world only)");
  out += topology_counts(internet) + "\n";

  std::vector<topo::AsIndex> origins;
  const auto& eyes = internet.eyeballs;
  const std::size_t stride = eyes.size() > 16 ? eyes.size() / 16 : 1;
  for (std::size_t i = 0; i < eyes.size(); i += stride) origins.push_back(eyes[i]);
  bgp::RouteCache cache{&g};
  cache.warm(origins, exec::global_pool());

  const topo::EdgeIndex& idx = g.edge_index();
  stats::Table waves{{"wave", "origin", "sessions", "invalidated", "pops", "changed"}};
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<bgp::OriginChurn> batch;
    for (const topo::AsIndex o : origins) {
      const auto edges = idx.edges_of(o);
      bgp::OriginChurn oc;
      oc.origin = o;
      const topo::EdgeId e = edges[static_cast<std::size_t>(wave) % edges.size()];
      switch (wave) {
        case 0:
          oc.events.push_back(bgp::ChurnEvent::withdraw(e));
          break;
        case 1:
          oc.events.push_back(bgp::ChurnEvent::announce(edges.front()));
          oc.events.push_back(bgp::ChurnEvent::prepend_set(e, 3));
          break;
        default: {
          const auto& links = g.edge(e).links;
          if (!links.empty()) {
            oc.events.push_back(bgp::ChurnEvent::link_flap(links.front()));
          }
          oc.events.push_back(
              bgp::ChurnEvent::prepend_set(edges[1 % edges.size()], 0));
          break;
        }
      }
      batch.push_back(std::move(oc));
    }
    const auto stats = cache.reconverge(batch, exec::global_pool());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      waves.add_row({std::to_string(wave), std::string(g.node(batch[i].origin).name),
                     std::to_string(stats[i].changed_sessions),
                     std::to_string(stats[i].invalidated()),
                     std::to_string(stats[i].worklist_pops),
                     std::to_string(stats[i].changed_routes)});
    }
  }
  out += waves.render();

  // Final per-origin table digests: the full post-churn tables, hashed, so a
  // divergence anywhere in a delta is visible even when the stats agree.
  stats::Table digests{{"origin", "table digest"}};
  for (const topo::AsIndex o : origins) {
    const bgp::RouteTable* table = cache.find(o);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(bgp::dump_table(g, *table, /*limit=*/0))));
    digests.add_row({std::string(g.node(o).name), buf});
  }
  out += digests.render();
  return out;
}

/// Serving round-trip: build a ServingWorld, snapshot it to a temp file named
/// by the config fingerprint (no wall clock, no RNG — two runs reuse and
/// overwrite the same path with identical bytes), load it back, and answer
/// one deterministic query batch from both worlds. The rendering carries both
/// digests and an explicit equality line, so fresh-vs-loaded divergence fails
/// the audit even within a single run.
std::string render_serving_tables(const ScenarioConfig& config) {
  std::string out;
  out += banner("serving (snapshot vs fresh)");

  ServingConfig serving;
  serving.warm_origins = 24;
  const auto fresh = ServingWorld::build(config, serving);
  out += topology_counts(fresh->scenario().internet) +
         " clients=" + std::to_string(fresh->scenario().clients.size()) +
         " warmed=" + std::to_string(fresh->warmed().size()) + "\n";

  const char* tmpdir = std::getenv("TMPDIR");
  char name[48];
  std::snprintf(name, sizeof name, "/bgpcmp_serving_%016llx.snap",
                static_cast<unsigned long long>(scenario_config_fingerprint(config)));
  const std::string path =
      std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") + name;
  fresh->save(path);
  // kFull: the audit is exactly where the deep world-fingerprint pin earns
  // its cost (see topo::SnapshotVerify) — every CI run re-verifies that the
  // materialized world matches the stored fingerprint bit for bit.
  const auto loaded = ServingWorld::load(path, config, topo::SnapshotVerify::kFull);
  std::remove(path.c_str());

  const auto queries = fresh->generate_queries(/*count=*/96, /*seed=*/2026);
  const QueryServer fresh_server{fresh.get(), &exec::global_pool()};
  const QueryServer loaded_server{loaded.get(), &exec::global_pool()};
  const auto fresh_answers = fresh_server.answer_batch(queries);
  const auto loaded_answers = loaded_server.answer_batch(queries);

  stats::Table sampled{{"query", "answer"}};
  for (std::size_t i = 0; i < fresh_answers.size(); i += 12) {
    sampled.add_row({std::to_string(i), fresh_answers[i]});
  }
  out += sampled.render();

  char digest[17];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(answers_digest(fresh_answers)));
  out += "fresh digest=" + std::string(digest) + "\n";
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(answers_digest(loaded_answers)));
  out += "loaded digest=" + std::string(digest) + "\n";
  out += std::string("fresh equals loaded=") +
         (fresh_answers == loaded_answers ? "1" : "0") + "\n";
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string render_result_tables(const ScenarioConfig& config,
                                 const FingerprintOptions& options) {
  if (options.serving) return render_serving_tables(config);
  if (options.churn) return render_churn_tables(config);
  if (options.topology_only) {
    // World generation only — no provider, clients, or studies. The canonical
    // structural hash stands in for the table dumps a full scenario gets.
    const auto internet = topo::build_internet(config.internet);
    std::string out;
    out += banner("topology (world only)");
    out += topology_counts(internet) + "\n";
    out += per_class_table(internet.graph);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(topo::internet_fingerprint(internet)));
    out += "world fingerprint=" + std::string(buf) + "\n";
    return out;
  }
  const auto scenario = Scenario::make(config);
  const cdn::AnycastCdn cdn{&scenario->internet, &scenario->provider};
  std::string out;
  append_topology(*scenario, out);
  append_routes(*scenario, out);
  append_catchment(*scenario, cdn, out);
  append_demand_and_latency(*scenario, cdn, out);
  if (options.run_studies) {
    append_pop_study(*scenario, out);
    append_anycast_study(*scenario, cdn, out);
    append_wan_study(*scenario, out);
  }
  return out;
}

std::uint64_t scenario_fingerprint(const ScenarioConfig& config,
                                   const FingerprintOptions& options) {
  return fnv1a64(render_result_tables(config, options));
}

}  // namespace bgpcmp::core
