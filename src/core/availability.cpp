#include "bgpcmp/core/availability.h"

#include <algorithm>
#include <map>

#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

AvailabilityResult run_availability_study(const Scenario& scenario,
                                          cdn::AnycastCdn& cdn,
                                          const AvailabilityConfig& config) {
  AvailabilityResult result;
  const auto& graph = scenario.internet.graph;
  const bgp::OriginSpec original_spec = cdn.anycast_spec();

  // Pre-failure state: catchments and DNS decisions.
  std::vector<cdn::PopId> catchment(scenario.clients.size(), cdn::kNoPop);
  std::map<cdn::PopId, double> catchment_weight;
  double total_weight = 0.0;
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    const auto& client = scenario.clients.at(id);
    total_weight += client.user_weight;
    const auto route = cdn.anycast_route(client);
    if (!route.valid()) continue;
    catchment[id] = route.pop;
    catchment_weight[route.pop] += client.user_weight;
  }
  result.failed_pop = catchment_weight.begin()->first;
  for (const auto& [pop, w] : catchment_weight) {
    if (w > catchment_weight[result.failed_pop]) result.failed_pop = pop;
  }

  cdn::OdinBeacons beacons{&cdn, &scenario.latency, &scenario.clients};
  cdn::DnsRedirector redirector{&cdn, &beacons, &scenario.clients, config.dns};
  const auto clusters = redirector.build_clusters();
  Rng rng = Rng{config.seed}.fork("decide");
  std::vector<cdn::RedirectDecision> pre_decision(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    pre_decision[c] =
        redirector.decide(clusters[c], config.failure_time - SimTime::hours(1), rng);
  }

  // Pre-failure anycast latency (for the failover penalty).
  std::vector<double> pre_ms(scenario.clients.size(), -1.0);
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    if (catchment[id] != result.failed_pop) continue;
    const auto& client = scenario.clients.at(id);
    const auto route = cdn.anycast_route(client);
    pre_ms[id] = scenario.latency
                     .rtt(route.path, config.failure_time, client.access,
                          client.origin_as, client.city)
                     .total()
                     .value();
  }

  // Fail the PoP: its unicast front-end stops answering and every anycast
  // announcement on its sessions is withdrawn.
  cdn.set_failed_pops({result.failed_pop});
  bgp::OriginSpec failed_spec = original_spec;
  for (const auto l : scenario.provider.pop(result.failed_pop).links) {
    failed_spec.suppress.insert(graph.link(l).edge);
  }
  cdn.set_anycast_spec(failed_spec);

  // Anycast accounting: affected users are down for the convergence window,
  // then served by the new catchment.
  double anycast_affected = 0.0;
  std::vector<double> penalties;
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    if (catchment[id] != result.failed_pop) continue;
    const auto& client = scenario.clients.at(id);
    anycast_affected += client.user_weight;
    const auto after = cdn.anycast_route(client);
    if (after.valid() && pre_ms[id] >= 0.0) {
      const double post = scenario.latency
                              .rtt(after.path, config.failure_time, client.access,
                                   client.origin_as, client.city)
                              .total()
                              .value();
      penalties.push_back(post - pre_ms[id]);
    }
  }

  // DNS accounting: clients whose cluster was pinned to the failed unicast
  // front-end stay dark until their cached answer dies and the controller's
  // next decision takes effect; clients whose cluster stayed on anycast
  // behave like anycast users.
  double dns_affected = 0.0;
  double dns_recovered = 0.0;
  double anycast_like = 0.0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& decision = pre_decision[c];
    for (const auto id : clusters[c].members) {
      const auto& client = scenario.clients.at(id);
      if (decision.use_unicast) {
        if (decision.pop != result.failed_pop) continue;  // pinned elsewhere: fine
        dns_affected += client.user_weight;
        // Post-TTL: a fresh decision over the degraded CDN; the failed
        // front-end no longer answers beacons, so any outcome that is not
        // the failed pop counts as recovery.
        Rng re = Rng{config.seed}.fork("re-" + std::to_string(c));
        const auto fresh = redirector.decide(
            clusters[c], config.failure_time + config.dns_ttl, re);
        if (!fresh.use_unicast || fresh.pop != result.failed_pop) {
          dns_recovered += client.user_weight;
        }
      } else if (catchment[id] == result.failed_pop) {
        anycast_like += client.user_weight;  // same exposure as pure anycast
      }
    }
  }

  if (total_weight > 0.0) {
    result.anycast_affected_fraction = anycast_affected / total_weight;
    result.dns_affected_fraction = (dns_affected + anycast_like) / total_weight;
    const double conv = static_cast<double>(config.bgp_convergence.seconds());
    const double dark = static_cast<double>(
        (config.dns_ttl + config.controller_reaction).seconds());
    result.anycast_outage_user_seconds = anycast_affected * conv / total_weight;
    result.dns_outage_user_seconds =
        (dns_affected * dark + anycast_like * conv) / total_weight;
  }
  if (!penalties.empty()) {
    result.anycast_failover_penalty_ms = stats::median(penalties);
  }
  if (dns_affected > 0.0) {
    result.dns_recovered_fraction = dns_recovered / dns_affected;
  }

  cdn.set_failed_pops({});
  cdn.set_anycast_spec(original_spec);  // restore the world
  return result;
}

}  // namespace bgpcmp::core
