#include "bgpcmp/core/footprint.h"

#include <algorithm>

#include "bgpcmp/stats/cdf.h"

namespace bgpcmp::core {

FootprintResult run_footprint_ablation(const ScenarioConfig& base,
                                       const FootprintConfig& config,
                                       std::span<const double> fractions) {
  FootprintResult result;
  for (const double fraction : fractions) {
    ScenarioConfig cfg = base;
    cfg.provider.pni_eyeball_fraction *= fraction;
    cfg.provider.ixp_peer_prob *= fraction;
    auto scenario = Scenario::make(cfg);

    // Count the provider's surviving peering edges and concentrate the load
    // shed by removed peers onto every surviving provider link.
    const auto& graph = scenario->internet.graph;
    const topo::AsIndex cp = scenario->provider.as_index();
    std::size_t peer_edges = 0;
    const double load_scale = 1.0 + config.load_shift * (1.0 - fraction);
    for (const auto e : graph.edges_of(cp)) {
      if (graph.role_of_other(e, cp) == topo::NeighborRole::Peer) ++peer_edges;
      for (const auto l : graph.edge(e).links) {
        scenario->congestion.set_load_scale(l, load_scale);
      }
    }

    const auto study = run_pop_study(*scenario, config.study);

    FootprintPoint point;
    point.peering_fraction = fraction;
    point.provider_peer_edges = peer_edges;
    point.improvable_frac_5ms = study.improvable_traffic_fraction(5.0);

    stats::WeightedCdf bgp_rtts;
    double transit_traffic = 0.0;
    double total_traffic = 0.0;
    for (const auto& s : study.series) {
      const bool transit_preferred =
          s.routes[0].role == topo::NeighborRole::Provider;
      for (std::size_t w = 0; w < study.windows.size(); ++w) {
        bgp_rtts.add(s.medians[0][w], s.volume[w]);
        total_traffic += s.volume[w];
        if (transit_preferred) transit_traffic += s.volume[w];
      }
    }
    if (!bgp_rtts.empty()) {
      // Traffic-weighted mean.
      double sum = 0.0;
      for (const auto& s : study.series) {
        for (std::size_t w = 0; w < study.windows.size(); ++w) {
          sum += static_cast<double>(s.medians[0][w]) * s.volume[w];
        }
      }
      point.mean_bgp_rtt_ms = total_traffic > 0.0 ? sum / total_traffic : 0.0;
      point.p95_bgp_rtt_ms = bgp_rtts.quantile(0.95);
    }
    point.transit_preferred_fraction =
        total_traffic > 0.0 ? transit_traffic / total_traffic : 0.0;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace bgpcmp::core
