// The resident serving layer: warm state held in memory, queries answered
// from it (docs/SERVING.md).
//
// A ServingWorld is a built Scenario plus a warmed RouteCache for a chosen
// origin set — the provider's anycast table and the top client origins by
// demand. It comes up two ways: build() (full topology generation + route
// warming) or load() (replay a serving snapshot, core/snapshot.h — the 10x
// cold-start path bench/e19_serving.cpp measures). Either way the object is
// warmed on construction, so serve-phase reads are valid for its whole
// lifetime; the BGPCMP_PHASE / BGPCMP_REQUIRES_WARMED annotations put every
// query under detlint D5 and Clang TSA coverage.
//
// QueryServer batches queries over a thread pool with exec::parallel_chunks:
// each chunk writes only its own answer slots, so a batch's answers — and
// their digest — are byte-identical at any pool width and for
// snapshot-loaded vs freshly built worlds (the serving_default determinism
// audit scenario pins both).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/core/scenario.h"
#include "bgpcmp/netbase/simtime.h"
#include "bgpcmp/topology/world_snapshot.h"

namespace bgpcmp::exec {
class ThreadPool;
}  // namespace bgpcmp::exec

namespace bgpcmp::core {

struct ServingConfig {
  /// Origins to warm: the provider plus the top (warm_origins - 1) client
  /// origin ASes by summed demand popularity (ties broken on lower AsIndex).
  /// Egress queries are drawn from warmed origins only; latency/catchment
  /// queries need just the provider table and cover every client prefix.
  std::size_t warm_origins = 256;
};

/// One serving-plane request against a client prefix at an instant.
struct Query {
  enum class Kind : std::uint8_t {
    Latency,    ///< anycast RTT from the prefix to its catchment PoP
    Egress,     ///< Edge-Fabric egress ranking at the prefix's serving PoP
    Catchment,  ///< which PoP the prefix's anycast route lands at
  };
  Kind kind = Kind::Latency;
  traffic::PrefixId prefix = 0;
  SimTime t;
};

/// The resident warm state. Construction warms every table it will ever
/// serve from; the object is immutable afterwards, so concurrent readers
/// need no synchronization.
class ServingWorld {
 public:
  /// Cold start from scratch: generate the world, rank the warm set, warm.
  BGPCMP_PHASE(build)
  [[nodiscard]] static std::unique_ptr<ServingWorld> build(
      const ScenarioConfig& config = {}, const ServingConfig& serving = {});

  /// Cold start from a serving snapshot: materialize the world and install
  /// the stored tables instead of recomputing them. The warmed origin set
  /// comes from the snapshot, so a world loaded from save() of a build() with
  /// the same configs serves byte-identical answers. The default kPayload
  /// verification keeps load latency independent of the deep fingerprint
  /// walk; pass kFull to additionally re-pin the materialized world against
  /// the stored internet_fingerprint (tests and the serving_default audit
  /// scenario do).
  BGPCMP_PHASE(warm)
  [[nodiscard]] static std::unique_ptr<ServingWorld> load(
      const std::string& path, const ScenarioConfig& config,
      topo::SnapshotVerify verify = topo::SnapshotVerify::kPayload);

  /// Write this world and its warmed tables as a serving snapshot.
  BGPCMP_PHASE(warm)
  void save(const std::string& path) const;

  /// Answer one query as a canonical one-line string (stable field=value
  /// text; doubles printed with %.3f) — the unit the batch digest hashes.
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(warm_serving_tables)
  [[nodiscard]] std::string answer(const Query& query) const;

  /// A deterministic query stream: kinds round-robin Latency/Egress/
  /// Catchment, prefixes drawn popularity-weighted (egress from warmed
  /// origins' prefixes only), instants uniform over the congestion horizon.
  /// Serial draws from one Rng{seed} — same stream every run and width.
  [[nodiscard]] std::vector<Query> generate_queries(std::size_t count,
                                                    std::uint64_t seed) const;

  [[nodiscard]] const Scenario& scenario() const { return *scenario_; }
  [[nodiscard]] std::span<const topo::AsIndex> warmed() const { return warmed_; }
  [[nodiscard]] const ServingConfig& serving_config() const { return serving_; }

  ServingWorld(const ServingWorld&) = delete;
  ServingWorld& operator=(const ServingWorld&) = delete;

 private:
  /// Fresh build: rank the warm set from demand, then warm.
  ServingWorld(std::unique_ptr<Scenario> scenario, ServingConfig serving);
  /// Snapshot load: adopt the stored warm set, install its tables, and run
  /// the (now no-op) warm pass so both paths discharge the same contract.
  ServingWorld(std::unique_ptr<Scenario> scenario,
               std::vector<topo::AsIndex> warmed,
               std::vector<bgp::RouteTable> tables);

  /// Compute every warmed_ table (first-fill-wins: tables installed from a
  /// snapshot stay). Called from both constructors — detlint's constructor
  /// discharge — and named by every BGPCMP_REQUIRES_WARMED above.
  BGPCMP_PHASE(warm)
  void warm_serving_tables();

  /// Shared post-warm setup: membership flags and the two popularity CDFs.
  void index_prefixes();

  std::string answer_latency(const traffic::ClientPrefix& client,
                             const Query& query) const;
  std::string answer_egress(const traffic::ClientPrefix& client,
                            const Query& query) const;
  std::string answer_catchment(const traffic::ClientPrefix& client,
                               const Query& query) const;

  std::unique_ptr<Scenario> scenario_;
  ServingConfig serving_;
  bgp::RouteCache tables_;
  std::vector<topo::AsIndex> warmed_;     ///< provider first, then by demand
  std::vector<char> origin_warmed_;       ///< by AsIndex: in warmed_?
  bgp::OriginSpec anycast_spec_;          ///< provider announced everywhere
  std::vector<double> cum_all_;           ///< popularity CDF over all prefixes
  std::vector<traffic::PrefixId> egress_prefixes_;  ///< warmed-origin prefixes
  std::vector<double> cum_egress_;        ///< popularity CDF over those
};

/// Batch front-end: fans answer() over a pool in contiguous chunks.
class QueryServer {
 public:
  /// `chunk` queries per work item; 0 behaves as 1. The world and pool must
  /// outlive the server.
  QueryServer(const ServingWorld* world, exec::ThreadPool* pool,
              std::size_t chunk = 16)
      : world_(world), pool_(pool), chunk_(chunk) {}

  /// Answers in query order, byte-identical at any pool width.
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(warm_serving_tables)
  [[nodiscard]] std::vector<std::string> answer_batch(
      std::span<const Query> queries) const;

 private:
  const ServingWorld* world_;
  exec::ThreadPool* pool_;
  std::size_t chunk_;
};

/// FNV-1a over the answers joined with '\n' — the equality token the audit,
/// tests, and `bgpcmp serve --digest` compare across widths and start paths.
[[nodiscard]] std::uint64_t answers_digest(std::span<const std::string> answers);

}  // namespace bgpcmp::core
