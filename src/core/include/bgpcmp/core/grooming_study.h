// E8 (§3.2.2): nature vs nurture for anycast quality.
//
// Measures the anycast-vs-best-unicast gap of an *ungroomed* CDN, runs the
// operator grooming loop, and re-measures — across PoP densities — to
// separate what the footprint buys ("nature") from what announcement
// grooming buys ("nurture").
#pragma once

#include <vector>

#include "bgpcmp/cdn/grooming.h"
#include "bgpcmp/core/scenario.h"

namespace bgpcmp::core {

struct GroomingStudyConfig {
  std::uint64_t seed = 4001;
  cdn::GroomingConfig grooming;
  /// Clients sampled (weight-proportionally) for gap measurement.
  int sample_clients = 500;
  SimTime measure_time = SimTime::hours(12.0);
  cdn::OdinConfig odin;
};

/// Gap distribution snapshot of one CDN state.
struct AnycastQuality {
  double mean_gap_ms = 0.0;        ///< weighted mean (anycast - best unicast)
  double median_gap_ms = 0.0;
  double frac_within_10ms = 0.0;   ///< requests within 10 ms of best unicast
  double frac_tail_50ms = 0.0;     ///< requests >= 50 ms worse than best
};

struct GroomingDensityRow {
  std::size_t pop_count = 0;
  AnycastQuality ungroomed;
  AnycastQuality groomed;
  int grooming_steps = 0;
  /// Mean gap trajectory, index 0 = ungroomed.
  std::vector<double> gap_by_iteration;
};

struct GroomingStudyResult {
  std::vector<GroomingDensityRow> rows;
};

/// Sweep PoP density; for each count, build a fresh scenario with that many
/// PoPs, quantify anycast quality before and after grooming.
[[nodiscard]] GroomingStudyResult run_grooming_study(
    const ScenarioConfig& base, const GroomingStudyConfig& config,
    std::span<const std::size_t> pop_counts);

/// Measure the quality snapshot of an existing CDN state.
[[nodiscard]] AnycastQuality measure_anycast_quality(const Scenario& scenario,
                                                     const cdn::AnycastCdn& cdn,
                                                     const GroomingStudyConfig& config);

}  // namespace bgpcmp::core
