// E10 (§4): beyond median performance.
//
// The paper's closing argument: BGP's losses are small in the median but the
// 2-4% tail is hundreds of billions of sessions, and throughput looked
// similar across tiers. This analysis quantifies the improvable-traffic tail
// at multiple thresholds, scales it to the paper's session volume, and
// computes a TCP-model goodput ratio between the cloud tiers.
#pragma once

#include <span>
#include <vector>

#include "bgpcmp/core/study_pop.h"
#include "bgpcmp/measure/campaign.h"

namespace bgpcmp::core {

struct TailConfig {
  /// The Facebook dataset holds "hundreds of trillions" of sessions over ten
  /// days; this scale converts traffic fractions to affected sessions.
  double total_sessions = 2.0e14;
  std::vector<double> thresholds_ms{1.0, 5.0, 10.0, 20.0};
};

struct TailThresholdRow {
  double threshold_ms = 0.0;
  double traffic_fraction = 0.0;
  double estimated_sessions = 0.0;
};

struct TailResult {
  std::vector<TailThresholdRow> rows;
  /// Upper-tail quantiles of the Fig 1 improvement distribution.
  double p95_improvement_ms = 0.0;
  double p99_improvement_ms = 0.0;
  /// Median goodput ratio Premium/Standard for modeled 10 MB HTTP GETs (the
  /// TCP transfer model in measure/http.h) — the §4 footnote's
  /// "10 MB downloads ... saw little difference".
  double goodput_ratio_median = 1.0;
};

[[nodiscard]] TailResult analyze_tail(const PopStudyResult& study,
                                      std::span<const measure::TierSample> wan_samples,
                                      const TailConfig& config = {});

}  // namespace bgpcmp::core
