// Study 1 (§3.1): performance-aware egress routing vs BGP at every PoP.
//
// Reproduces the Facebook analysis: for each <PoP, prefix>, sampled sessions
// are sprayed over BGP's top-k egress routes in every 15-minute window;
// per-window medians compare BGP's preferred route against the best
// alternative, traffic-weighted. The stored per-route time series also feeds
// the degrade-together decomposition (E6), the footprint ablation (E7), and
// the beyond-median analysis (E10).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgpcmp/core/scenario.h"
#include "bgpcmp/stats/bootstrap.h"
#include "bgpcmp/stats/cdf.h"
#include "bgpcmp/traffic/sessions.h"

namespace bgpcmp::core {

struct PopStudyConfig {
  std::uint64_t seed = 1001;
  double days = 10.0;   ///< the paper's dataset covers ten days
  int window_stride = 2;  ///< evaluate every n-th 15-minute window
  int top_k_routes = 3;   ///< spray over BGP's top-k preferred routes
  traffic::SessionConfig sessions;
  stats::BootstrapOptions bootstrap{/*resamples=*/60, /*confidence=*/0.95};
};

/// Metadata of one ranked egress route at a PoP.
struct EgressRouteInfo {
  topo::AsIndex neighbor = topo::kNoAs;
  topo::NeighborRole role = topo::NeighborRole::Peer;
  topo::LinkKind kind = topo::LinkKind::Transit;
  topo::LinkId link = topo::kNoLink;
  std::uint16_t as_path_len = 0;
};

/// Per-<PoP, prefix> measurement series across all windows.
struct PopPrefixSeries {
  cdn::PopId pop = cdn::kNoPop;
  traffic::PrefixId prefix = 0;
  std::vector<EgressRouteInfo> routes;  ///< policy-ranked; [0] is BGP preferred
  std::vector<float> volume;            ///< bytes per window
  /// medians[r][w]: median sampled MinRTT of route r in window w (ms).
  std::vector<std::vector<float>> medians;
  /// Bootstrap CI bounds of (BGP - best alternate) per window.
  std::vector<float> ci_lower;
  std::vector<float> ci_upper;

  /// BGP-preferred minus best-alternate median in window w.
  [[nodiscard]] float diff(std::size_t w) const;
};

struct PopStudyResult {
  std::vector<TimeWindow> windows;  ///< the evaluated windows
  std::vector<PopPrefixSeries> series;

  /// Fig 1: traffic-weighted CDF of (BGP - best alternate); positive means an
  /// alternate path beats BGP. `bound` selects the point estimate or a CI
  /// bound (the figure's shaded region).
  enum class Fig1Bound { Point, Lower, Upper };
  [[nodiscard]] stats::WeightedCdf fig1_cdf(Fig1Bound bound = Fig1Bound::Point) const;

  /// Fig 2 solid line: (best peering route) - (best transit route) median,
  /// over <pair, window> with both classes present.
  [[nodiscard]] stats::WeightedCdf fig2_peer_vs_transit() const;
  /// Fig 2 dashed line: (best private peer) - (best public peer).
  [[nodiscard]] stats::WeightedCdf fig2_private_vs_public() const;

  /// §3.1 headline: fraction of traffic whose median MinRTT an omniscient
  /// controller improves by at least `threshold_ms`.
  [[nodiscard]] double improvable_traffic_fraction(double threshold_ms) const;
};

/// The evaluated windows of a study config (strided 15-minute grid) — shared
/// by the eager study, the streaming scale study, and shard workers.
[[nodiscard]] std::vector<TimeWindow> study_windows(const PopStudyConfig& config);

/// Run the study on a scenario. Deterministic in (scenario, config).
[[nodiscard]] PopStudyResult run_pop_study(const Scenario& scenario,
                                           const PopStudyConfig& config = {});

}  // namespace bgpcmp::core
