// E13 (§4): availability under front-end failure — anycast vs DNS redirection.
//
// The paper argues latency is not the whole story: "anycast provides
// resilience against site outages and avoids availability problems that can
// be induced by DNS caching". This experiment fails a front-end and accounts
// the outage each scheme imposes on its users:
//
//   * anycast clients re-converge when BGP withdraws the failed site's
//     announcements (tens of seconds), then land on the next catchment;
//   * DNS-redirected clients pinned to the failed front-end's unicast address
//     stay black-holed until their cached answer expires and the redirection
//     controller re-decides.
#pragma once

#include "bgpcmp/cdn/dns_redirect.h"
#include "bgpcmp/core/scenario.h"

namespace bgpcmp::core {

struct AvailabilityConfig {
  std::uint64_t seed = 6001;
  SimTime failure_time = SimTime::days(2.0);
  /// BGP withdrawal + convergence until anycast users are served again.
  SimTime bgp_convergence = SimTime{45};
  /// DNS answer TTL (five minutes is the common CDN choice).
  SimTime dns_ttl = SimTime::minutes(5.0);
  /// Time for the redirection controller to notice and change its decision.
  SimTime controller_reaction = SimTime::minutes(2.0);
  cdn::DnsRedirectConfig dns;
};

struct AvailabilityResult {
  cdn::PopId failed_pop = cdn::kNoPop;

  // User-weight shares hit by the failure under each scheme.
  double anycast_affected_fraction = 0.0;
  double dns_affected_fraction = 0.0;

  // Outage cost: affected user-weight x seconds unreachable, normalized by
  // total user weight (i.e. expected unreachable seconds per user).
  double anycast_outage_user_seconds = 0.0;
  double dns_outage_user_seconds = 0.0;

  /// Median added latency (ms) for anycast users after re-convergence
  /// (their new catchment is farther).
  double anycast_failover_penalty_ms = 0.0;

  /// Affected DNS users whose post-TTL re-decision lands them somewhere
  /// reachable (should be ~all).
  double dns_recovered_fraction = 0.0;
};

/// Fail the busiest-catchment PoP of `cdn` and account the damage. The CDN's
/// announcement spec is restored before returning.
[[nodiscard]] AvailabilityResult run_availability_study(
    const Scenario& scenario, cdn::AnycastCdn& cdn,
    const AvailabilityConfig& config = {});

}  // namespace bgpcmp::core
