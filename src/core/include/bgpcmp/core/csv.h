// CSV export for figure data.
//
// Every bench prints human-readable tables; setting BGPCMP_CSV_DIR in the
// environment makes them also drop machine-readable CSVs there, so the
// figures can be re-plotted with any tool.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgpcmp/stats/cdf.h"

namespace bgpcmp::core {

/// Write rows to `path` as RFC-4180-ish CSV (fields containing commas,
/// quotes, or newlines are quoted). Returns false on I/O failure.
bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Export one or more CDF/CCDF curves sampled on a shared x grid.
bool write_series_csv(const std::string& path, const std::string& x_label,
                      const std::vector<std::string>& names,
                      const std::vector<const stats::WeightedCdf*>& cdfs, double lo,
                      double hi, std::size_t points, bool ccdf = false);

/// The export directory from $BGPCMP_CSV_DIR, if set and non-empty.
[[nodiscard]] std::optional<std::string> csv_export_dir();

}  // namespace bgpcmp::core
