// Deterministic sharding: how work splits across OS processes and how the
// pieces merge back into bytes identical to a single-process run.
//
// The substrate's determinism story so far covers threads (exec::ThreadPool,
// pinned by determinism_audit --compare-threads). Processes are the next
// axis: a shard harness (tools/shard_runner, bgpcmp shard,
// determinism_audit --shards) forks workers, each worker computes a
// contiguous block of units (registry scenarios, study chunks, sweep seeds),
// and the parent merges per-unit result lines back in unit order. Everything
// here is pure logic — partitioning, line merging, and the text codec for
// streaming-study chunks — so it unit-tests without spawning anything; the
// fork/exec plumbing lives in tools/shard_util.h.
//
// The invariant every harness leans on: units are pure in (config, unit id),
// so  merge(shard(units, N))  ==  merge(shard(units, 1))  byte-for-byte, for
// any N. tests/core/shard_test.cpp pins the logic; scripts/check.sh pins the
// processes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgpcmp/core/scale_study.h"

namespace bgpcmp::core {

/// The contiguous block of unit ids a shard owns: [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
};

/// Partition `count` units into `shards` contiguous blocks; block `index`
/// gets the units. Blocks differ in size by at most one (the first
/// `count % shards` blocks take the extra unit) and tile [0, count) exactly.
/// Contiguity matters for study chunks: a worker skips the demand cursor once
/// to its block's start, then streams forward.
[[nodiscard]] ShardRange shard_range(std::size_t count, int shards, int index);

/// The merge fingerprint: FNV-1a over the unit lines joined with '\n', in
/// unit order. Shard count never appears in the input, so any sharding of the
/// same units merges to the same value.
[[nodiscard]] std::uint64_t merge_fingerprint(std::span<const std::string> lines);

/// Text codec for shipping a chunk result across a process boundary. One
/// header line (ScaleChunkResult::line()) followed by one "p <value>
/// <weight>" line per fig1 observation, doubles in hexfloat so the bytes
/// round-trip exactly.
BGPCMP_PURE_CHUNK
[[nodiscard]] std::string encode_scale_chunk(const ScaleChunkResult& chunk);

/// Parse a stream of encoded chunks (concatenated encode_scale_chunk
/// output). Malformed input trips a BGPCMP_CHECK.
BGPCMP_PURE_CHUNK
[[nodiscard]] std::vector<ScaleChunkResult> decode_scale_chunks(std::string_view text);

/// Assemble a study result from decoded per-chunk results arriving in any
/// order (workers finish whenever they finish). Verifies the chunks tile
/// [0, chunk_count) exactly — a lost worker output fails loudly, not with a
/// silently thinner study.
[[nodiscard]] ScaleStudyResult merge_scale_chunks(std::vector<ScaleChunkResult> chunks,
                                                  std::size_t chunk_count,
                                                  std::vector<TimeWindow> windows);

}  // namespace bgpcmp::core
