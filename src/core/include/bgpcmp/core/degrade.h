// E6 (§3.1.1): do all route options degrade together?
//
// Decomposes the PoP study's per-route time series: when BGP's preferred
// route degrades relative to its own baseline, is there an alternate that
// didn't? And are the windows where an alternate beats BGP transient blips or
// persistent (the alternate is simply always better)?
#pragma once

#include <cstddef>

#include "bgpcmp/core/study_pop.h"

namespace bgpcmp::core {

struct DegradeConfig {
  double improve_threshold_ms = 5.0;  ///< alternate must beat BGP by this much
  double degrade_threshold_ms = 5.0;  ///< route is degraded this far above baseline
  double persistent_fraction = 0.6;   ///< improvable in >= this fraction => persistent
  double baseline_quantile = 0.1;     ///< route baseline = this quantile of its series
};

struct DegradeResult {
  std::size_t pairs = 0;

  // Traffic-weighted split of <PoP, prefix> pairs by improvement pattern.
  double traffic_no_opportunity = 0.0;  ///< alternates never help
  double traffic_persistent = 0.0;      ///< an alternate is better nearly always
  double traffic_transient = 0.0;       ///< alternates help only sometimes

  /// Fraction of <pair, window> entries where the BGP route was degraded.
  double degraded_window_fraction = 0.0;
  /// Among degraded windows, the fraction where every alternate was degraded
  /// too — the "no performant alternate exists" share.
  double degrade_together_fraction = 0.0;
  /// Fraction of <pair, window> entries where an alternate beats BGP by the
  /// improvement threshold.
  double improvement_window_fraction = 0.0;
  /// Of the traffic-weighted improvable mass, the share contributed by
  /// persistent pairs — the paper's "most alternate paths which do beat BGP
  /// are consistently better all the time".
  double improvement_mass_persistent = 0.0;
};

[[nodiscard]] DegradeResult analyze_degrade(const PopStudyResult& study,
                                            const DegradeConfig& config = {});

}  // namespace bgpcmp::core
