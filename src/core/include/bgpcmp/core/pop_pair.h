// The per-<PoP, prefix> unit of Study 1, factored out of run_pop_study so the
// eager study (study_pop.h) and the streaming scale study (scale_study.h)
// execute the exact same plan/measure code — same draw order, same float
// expression order — and therefore produce bit-identical series for the same
// world. Any change here moves both paths together; the scale equivalence
// test (tests/core/scale_study_test.cpp) pins them against each other.
#pragma once

#include <vector>

#include "bgpcmp/bgp/route.h"
#include "bgpcmp/cdn/provider.h"
#include "bgpcmp/core/study_pop.h"
#include "bgpcmp/latency/delay.h"
#include "bgpcmp/latency/rtt_sampler.h"
#include "bgpcmp/netbase/rng.h"
#include "bgpcmp/traffic/clients.h"

namespace bgpcmp::core {

/// The ranked egress routes and their realized paths for one <PoP, prefix>.
struct PairPlan {
  cdn::PopId pop = cdn::kNoPop;
  traffic::PrefixId prefix = 0;
  std::vector<EgressRouteInfo> routes;
  std::vector<lat::GeoPath> paths;

  /// A pair is measurable only when BGP had a real choice to make.
  [[nodiscard]] bool measurable() const { return routes.size() >= 2; }
};

/// Plan one pair: pick the serving PoP, rank the egress routes by BGP policy,
/// realize top-k paths. Reads only immutable world state plus the origin's
/// route table, so planning fans out over any axis (pairs, chunks, shards).
/// Pairs with fewer than two usable routes come back with routes cleared.
[[nodiscard]] PairPlan plan_pop_pair(const topo::AsGraph& graph,
                                     const topo::CityDb& db,
                                     const cdn::ContentProvider& provider,
                                     const traffic::ClientPrefix& client,
                                     traffic::PrefixId prefix,
                                     const bgp::RouteTable& table, int top_k);

/// Measure one planned pair across the windows: spray sampled sessions over
/// every route, keep per-window medians and the bootstrap CI of
/// (BGP - best alternate). `popularity` and `lon_deg` stand in for the eager
/// DemandModel — volumes come from traffic::diurnal_volume, which is the same
/// function the model calls, so streamed and eager volumes are bit-equal.
/// Deterministic in its arguments: the RNG is forked from `root` by
/// <prefix, pop>, never by call order.
[[nodiscard]] PopPrefixSeries measure_pop_pair(
    const PairPlan& plan, const traffic::ClientPrefix& client,
    const std::vector<TimeWindow>& windows, double popularity, double lon_deg,
    const traffic::DemandConfig& demand, const lat::LatencyModel& latency,
    const lat::RttSampler& sampler, const Rng& root, const PopStudyConfig& config);

}  // namespace bgpcmp::core
