// Streaming Study 1 for worlds too large to materialize eagerly.
//
// run_pop_study holds the whole client base, the demand model, and a route
// table for every client origin resident at once; at 100x AS counts the
// warmed RouteCache alone is tens of gigabytes. The scale path replaces the
// resident world with bounded windows over it:
//
//   * ScaleWorld is a Scenario minus the client/demand materializations —
//     just the internet, the attached provider, and the congestion/latency
//     fields (whose memory is world-sized, not client-sized).
//
//   * run_scale_study streams the client population chunk by chunk
//     (traffic::ClientStream): each chunk warms a fresh RouteCache over only
//     its origins, plans and measures its pairs with the exact code the eager
//     study runs (core/pop_pair.h), folds the pair series into Fig-1 points
//     plus a per-chunk digest, and drops everything before the next chunk.
//     Peak memory is bounded by the chunk size knob while results stay
//     bit-identical to the eager study on the same world
//     (tests/core/scale_study_test.cpp pins fig1 quantiles and the
//     improvable fraction).
//
//   * Per-chunk results are pure in (world, config, chunk) and carry a
//     canonical merge line, so chunks can run in different OS processes
//     (tools/shard_runner) and merge back — in chunk order — into a result
//     byte-identical to the single-process run. fingerprint() is the value
//     the shard harness compares.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bgpcmp/core/scenario.h"
#include "bgpcmp/netbase/thread_annotations.h"
#include "bgpcmp/core/study_pop.h"
#include "bgpcmp/stats/cdf.h"
#include "bgpcmp/traffic/client_stream.h"

namespace bgpcmp::core {

/// The world a streaming study runs against: a Scenario without the eager
/// client base, demand model, or any per-client state. Memory scales with
/// the AS graph, never with the client population.
class ScaleWorld {
 public:
  BGPCMP_PHASE(build)
  static std::unique_ptr<ScaleWorld> make(const ScenarioConfig& config = {});

  /// Adopt a pre-built world (e.g. loaded from a topology snapshot) that
  /// does not yet contain the provider AS; attaches the provider exactly
  /// like a fresh build, so the result is byte-identical to make().
  BGPCMP_PHASE(build)
  static std::unique_ptr<ScaleWorld> adopt(ScenarioConfig config, topo::Internet world);

  ScaleWorld(const ScaleWorld&) = delete;
  ScaleWorld& operator=(const ScaleWorld&) = delete;

  topo::Internet internet;
  cdn::ContentProvider provider;
  lat::CongestionField congestion;
  lat::LatencyModel latency;
  ScenarioConfig config;

 private:
  ScaleWorld(ScenarioConfig cfg, topo::Internet world);
};

struct ScaleStudyConfig {
  PopStudyConfig study;  ///< same knobs (and draws) as the eager study
  /// Origins per chunk: bounds the per-chunk RouteCache and client window.
  std::size_t chunk_origins = 256;
};

/// Everything one chunk of the stream contributes to the study.
struct ScaleChunkResult {
  std::uint32_t chunk = 0;
  std::uint32_t pairs = 0;          ///< measurable pairs (>= 2 routes)
  std::uint64_t series_digest = 0;  ///< FNV-1a over the chunk's series bytes
  /// Fig-1 observations (diff, volume) in pair-major, window-minor order —
  /// the same order the eager fig1_cdf visits them.
  std::vector<stats::Weighted> fig1;

  /// Canonical one-line rendering; the shard merge fingerprint hashes these
  /// lines joined in chunk order.
  [[nodiscard]] std::string line() const;
};

struct ScaleStudyResult {
  std::vector<TimeWindow> windows;
  std::vector<ScaleChunkResult> chunks;  ///< global chunk order

  /// Fig 1 CDF over all chunks' observations, in the eager visit order.
  [[nodiscard]] stats::WeightedCdf fig1_cdf() const;
  /// §3.1 headline, bit-equal to PopStudyResult::improvable_traffic_fraction
  /// on the same world (same additions in the same order).
  [[nodiscard]] double improvable_traffic_fraction(double threshold_ms) const;
  /// FNV-1a over the joined chunk lines: the sharded-vs-unsharded pin.
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] std::size_t pair_count() const;
};

/// Run one chunk: warm a RouteCache over the chunk's origins, plan and
/// measure its pairs, fold the series into fig1 points and a digest. The
/// demand cursor must sit at the chunk's first prefix (skip() to it); it is
/// left at the chunk's end. Pure in (world, config, windows, chunk) — chunk
/// order, process boundaries, and thread width never change the bytes —
/// machine-checked as BGPCMP_PURE_CHUNK (detlint D9/D10).
BGPCMP_PURE_CHUNK
[[nodiscard]] ScaleChunkResult run_scale_chunk(const ScaleWorld& world,
                                               const ScaleStudyConfig& config,
                                               const std::vector<TimeWindow>& windows,
                                               const traffic::ClientStream& stream,
                                               traffic::DemandStream& demand,
                                               std::size_t chunk);

/// Run the full streaming study in this process: all chunks in order, peak
/// memory bounded by config.chunk_origins.
[[nodiscard]] ScaleStudyResult run_scale_study(const ScaleWorld& world,
                                               const ScaleStudyConfig& config = {});

}  // namespace bgpcmp::core
