// Study 3 (§3.3): private WAN (Premium Tier) vs public Internet (Standard
// Tier) to a US-Central data center, measured from a rotating global vantage
// fleet — Fig 5's per-country map plus the ingress-distance headline.
#pragma once

#include <string>
#include <vector>

#include "bgpcmp/core/scenario.h"
#include "bgpcmp/measure/campaign.h"
#include "bgpcmp/wan/tiers.h"

namespace bgpcmp::core {

struct WanStudyConfig {
  measure::VantageFleetConfig fleet;
  measure::CampaignConfig campaign;
  std::uint64_t seed = 3001;
  /// "Enters the cloud network near the vantage point" radius (paper: 400 km).
  double ingress_near_km = 400.0;
  /// Minimum filtered samples for a country to be reported.
  std::size_t min_country_samples = 20;
};

/// One country of the Fig 5 map.
struct CountryRow {
  std::string country;
  topo::Region region = topo::Region::Europe;
  /// Median (Standard - Premium) RTT; positive = the private WAN is faster.
  double median_diff_ms = 0.0;
  std::size_t samples = 0;
};

struct WanStudyResult {
  std::vector<CountryRow> countries;  ///< sorted by descending diff

  // E12 headline, over all samples (before the vantage filter): fraction of
  // measurements entering the cloud within `ingress_near_km` of the vantage.
  double premium_ingress_near_fraction = 0.0;
  double standard_ingress_near_fraction = 0.0;

  std::size_t total_samples = 0;
  std::size_t filtered_samples = 0;  ///< direct-Premium + indirect-Standard

  /// Median diff for one country ("India" is §3.3.2's case study); 0 with
  /// found=false if the country has no row.
  [[nodiscard]] double country_diff(std::string_view country, bool& found) const;
};

[[nodiscard]] WanStudyResult run_wan_study(const Scenario& scenario,
                                           const wan::CloudTiers& tiers,
                                           const WanStudyConfig& config = {});

}  // namespace bgpcmp::core
