// Shared printers for bench binaries: every figure prints through these, so
// outputs are consistent and diff-able.
#pragma once

#include <string>
#include <vector>

#include "bgpcmp/stats/cdf.h"

namespace bgpcmp::core {

/// Render one or more CDFs sampled on a shared grid, like a figure's curves.
[[nodiscard]] std::string render_cdfs(const std::string& x_label,
                                      const std::vector<std::string>& names,
                                      const std::vector<const stats::WeightedCdf*>& cdfs,
                                      double lo, double hi, std::size_t points,
                                      bool ccdf = false);

/// "key: value" line with aligned columns, for headline numbers.
[[nodiscard]] std::string headline(const std::string& key, double value,
                                   const std::string& unit = "", int precision = 3);

/// Section banner.
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace bgpcmp::core
