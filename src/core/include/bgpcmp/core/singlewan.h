// E9 (§3.3.2): do Internet paths perform best when they spend most of their
// journey on a single large network?
//
// Annotates each vantage's Standard-tier path with the fraction of its
// distance carried by its largest single AS, relates that to latency
// inflation over the geodesic floor, tests the late-exit hypothesis by
// re-realizing the same AS paths with Tier-1 cold-potato routing, and prints
// the India case study.
#pragma once

#include <vector>

#include "bgpcmp/core/scenario.h"
#include "bgpcmp/wan/tiers.h"
#include "bgpcmp/wan/transit_wan.h"

namespace bgpcmp::core {

struct SingleWanConfig {
  std::uint64_t seed = 5001;
  int sample_clients = 800;
  SimTime measure_time = SimTime::hours(12.0);
  std::size_t bins = 5;  ///< over single-network fraction [0, 1]
};

struct SingleWanBin {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t count = 0;
  double median_inflation = 0.0;  ///< RTT / geodesic-floor RTT
};

struct SingleWanResult {
  std::vector<SingleWanBin> bins;
  /// Pearson correlation of single-network fraction vs latency inflation
  /// (negative supports the hypothesis: more single-WAN => less inflation).
  double correlation = 0.0;
  /// Median Standard-tier RTT reduction if Tier-1s carried the traffic
  /// late-exit instead of hot-potato (ms; positive = late exit helps).
  double late_exit_median_improvement_ms = 0.0;

  // India case study medians (ms).
  double india_premium_ms = 0.0;
  double india_standard_ms = 0.0;
  double world_premium_ms = 0.0;
  double world_standard_ms = 0.0;
  std::size_t india_samples = 0;
};

[[nodiscard]] SingleWanResult run_single_wan_study(const Scenario& scenario,
                                                   const wan::CloudTiers& tiers,
                                                   const SingleWanConfig& config = {});

}  // namespace bgpcmp::core
