// Central registry of the canonical scenarios every cross-cutting tool runs
// over — the determinism auditor, future perf harnesses, and CI sweeps all
// iterate this list instead of hard-coding preset names. Adding a scenario
// here automatically puts it under the determinism gate.
#pragma once

#include <span>
#include <string_view>

#include "bgpcmp/core/scenario.h"

namespace bgpcmp::core {

struct RegisteredScenario {
  std::string_view name;
  std::string_view description;
  ScenarioConfig (*config)();
  /// Whether fingerprinting should also run the (scaled-down) paper studies
  /// on this scenario, not just the world tables. Study runs dominate the
  /// auditor's runtime, so seed-sweep entries keep this off.
  bool fingerprint_studies = true;
  /// Fingerprint only the generated world (FingerprintOptions::topology_only):
  /// no provider, clients, or studies. Lets scaled-up topologies sit under
  /// the determinism gate without a full scenario's cost.
  bool topology_only = false;
  /// Fingerprint a churn run (FingerprintOptions::churn): deterministic event
  /// waves through RouteCache::reconverge, so the incremental delta paths sit
  /// under the determinism gate — including --compare-threads.
  bool churn = false;
  /// Fingerprint a serving run (FingerprintOptions::serving): build a
  /// ServingWorld, snapshot it, load it back, and answer the same query batch
  /// from both — snapshot codec, warm install, and the batched query path all
  /// sit under the determinism gate, including --compare-threads.
  bool serving = false;
};

/// All registered scenarios, in a fixed, documented order.
[[nodiscard]] std::span<const RegisteredScenario> scenario_registry();

/// Look up one scenario by name; nullptr if absent.
[[nodiscard]] const RegisteredScenario* find_scenario(std::string_view name);

}  // namespace bgpcmp::core
