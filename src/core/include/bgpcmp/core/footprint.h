// E7 (§3.1.3 open question): what happens to latency when a content provider
// drastically reduces its peering footprint?
//
// The paper notes such a study must "properly account for the reduced peering
// capacity and accompanying increased likelihood of congestion as the number
// of route options is reduced". The emulation sweeps the provider's peering
// fraction; removed peers' traffic concentrates on the surviving
// interconnections, whose offered load is scaled up accordingly.
#pragma once

#include <span>
#include <vector>

#include "bgpcmp/core/study_pop.h"

namespace bgpcmp::core {

struct FootprintConfig {
  PopStudyConfig study;
  /// Load concentration: surviving provider links carry
  /// (1 + load_shift * (1 - fraction)) times their nominal load.
  double load_shift = 1.4;
};

struct FootprintPoint {
  double peering_fraction = 1.0;
  std::size_t provider_peer_edges = 0;  ///< PNI + public peering edges kept
  /// Traffic-weighted mean / p95 of the BGP-preferred route's window medians.
  double mean_bgp_rtt_ms = 0.0;
  double p95_bgp_rtt_ms = 0.0;
  /// Fraction of traffic an omniscient controller improves by >= 5 ms.
  double improvable_frac_5ms = 0.0;
  /// Fraction of traffic whose BGP-preferred egress is a transit route.
  double transit_preferred_fraction = 0.0;
};

struct FootprintResult {
  std::vector<FootprintPoint> points;
};

/// Build one scenario per peering fraction (scaling the provider's PNI and
/// IXP peering probabilities) and run the PoP study on each.
[[nodiscard]] FootprintResult run_footprint_ablation(
    const ScenarioConfig& base, const FootprintConfig& config,
    std::span<const double> fractions);

}  // namespace bgpcmp::core
