// The standard experiment scenario: one synthetic Internet with a content
// provider attached, a client population, demand, and a congestion field.
// Every study, bench, and example builds on this fixture, so results across
// experiments describe the same world.
#pragma once

#include <cstdint>
#include <memory>

#include "bgpcmp/cdn/provider.h"
#include "bgpcmp/latency/congestion.h"
#include "bgpcmp/latency/delay.h"
#include "bgpcmp/topology/topology_gen.h"
#include "bgpcmp/traffic/clients.h"
#include "bgpcmp/traffic/demand.h"

namespace bgpcmp::core {

struct ScenarioConfig {
  topo::InternetConfig internet;
  cdn::ProviderConfig provider;
  traffic::ClientBaseConfig clients;
  traffic::DemandConfig demand;
  lat::CongestionConfig congestion;
  lat::LatencyConfig latency;

  /// Derive all component seeds from one master seed (for seed sweeps /
  /// property tests).
  [[nodiscard]] static ScenarioConfig with_master_seed(std::uint64_t seed);

  // Provider presets matching the three studies' settings (§2.3). The
  // default config equals facebook_like().

  /// Study 1: PNI-rich edge provider with dozens of PoPs (Facebook-like).
  [[nodiscard]] static ScenarioConfig facebook_like();
  /// Study 2: 2015-era anycast CDN — a few dozen front-ends, sparser peering
  /// (Microsoft-like), so anycast catchment errors are more common.
  [[nodiscard]] static ScenarioConfig microsoft_like();
  /// Study 3: hyperscale cloud with a large WAN edge (Google-like).
  [[nodiscard]] static ScenarioConfig google_like();
};

/// Owns the full simulated world; heap-allocated so internal pointers stay
/// stable. Non-copyable.
class Scenario {
 public:
  BGPCMP_PHASE(build)
  static std::unique_ptr<Scenario> make(const ScenarioConfig& config = {});

  /// Like make(), but sources the Internet from topo::WorldCache::global():
  /// repeated scenarios over the same InternetConfig (seed sweeps, benches,
  /// multiple provider presets on one world) copy a cached snapshot instead
  /// of regenerating it. The determinism audit must keep using make() — it
  /// compares two independent builds by design.
  BGPCMP_PHASE(build)
  static std::unique_ptr<Scenario> make_cached(const ScenarioConfig& config = {});

  /// Rehydrate a scenario from snapshot-loaded parts (core/snapshot.h): the
  /// world already contains the provider AS, and provider/clients were
  /// deserialized rather than re-generated. Demand, congestion, and latency
  /// are cheap derivations and are rebuilt from `config` — their inputs
  /// (clients, graph, seeds) are byte-identical to a fresh build, so the
  /// models are too. Warm phase: this is the load half of a warm start.
  BGPCMP_PHASE(warm)
  static std::unique_ptr<Scenario> restore(ScenarioConfig config, topo::Internet world,
                                           cdn::ContentProvider provider,
                                           traffic::ClientBase clients);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  topo::Internet internet;
  cdn::ContentProvider provider;
  traffic::ClientBase clients;
  traffic::DemandModel demand;
  lat::CongestionField congestion;
  lat::LatencyModel latency;
  ScenarioConfig config;

 private:
  Scenario(ScenarioConfig cfg, topo::Internet world);
  Scenario(ScenarioConfig cfg, topo::Internet world, cdn::ContentProvider cp,
           traffic::ClientBase cb);
};

}  // namespace bgpcmp::core
