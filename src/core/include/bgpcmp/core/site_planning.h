// E15 (§3.2.2 open questions): CDN site planning.
//
// "When designing or expanding a CDN, how should a provider decide where to
// locate PoPs ...? How well can the impact of adding a site be predicted?
// How quickly does benefit diminish when adding PoPs?"
//
// Two parts:
//   * a PoP-density sweep — anycast quality vs footprint size (the
//     diminishing-returns curve);
//   * a site-addition ablation — for each candidate metro, the *predicted*
//     latency benefit (pure geometry: clients now closer to a front-end) vs
//     the *actual* benefit once BGP catchments re-form around the new site.
#pragma once

#include <span>
#include <vector>

#include "bgpcmp/core/scenario.h"

namespace bgpcmp::core {

struct SitePlanningConfig {
  std::uint64_t seed = 7001;
  SimTime measure_time = SimTime::hours(12.0);
  /// Candidate metros considered for the addition study (top user-weight
  /// cities without a PoP).
  std::size_t candidate_count = 6;
};

struct DensityPoint {
  std::size_t pop_count = 0;
  /// User-weighted median/p90 of (anycast - best unicast), no sampling noise.
  double median_gap_ms = 0.0;
  double p90_gap_ms = 0.0;
  /// User-weighted median catchment distance.
  double median_catchment_km = 0.0;
};

struct SiteAdditionRow {
  topo::CityId candidate = topo::kNoCity;
  /// Geometry-only prediction: mean reduction of the distance-floor RTT for
  /// clients that become closer to a front-end (user-weighted, over all
  /// clients).
  double predicted_improvement_ms = 0.0;
  /// Measured: mean anycast RTT before minus after (user-weighted).
  double actual_improvement_ms = 0.0;
  /// User-weight share whose catchment moved to the new site.
  double catchment_shift = 0.0;
};

struct SitePlanningResult {
  std::vector<DensityPoint> density;
  std::vector<SiteAdditionRow> additions;
  /// Pearson correlation of predicted vs actual across candidates (the
  /// paper's "how well can the impact be predicted").
  double prediction_correlation = 0.0;
};

[[nodiscard]] SitePlanningResult run_site_planning(
    const ScenarioConfig& base, const SitePlanningConfig& config,
    std::span<const std::size_t> density_pop_counts);

}  // namespace bgpcmp::core
