// Serving snapshots: a built scenario plus warmed route tables on disk.
//
// Extends the topology-layer world snapshot (bgpcmp/topology/world_snapshot.h)
// with three more sections — provider, clients, warmed tables — so a resident
// server's cold start is a load-and-replay instead of a rebuild-and-rewarm.
// Configs are never serialized (ProviderConfig::extra_pop_cities holds
// non-owning string_views); instead the caller supplies its ScenarioConfig and
// the loader verifies the stored `scenario_config_fingerprint` before
// decoding, then re-derives the cheap models (demand, congestion, latency)
// from it via Scenario::restore.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/core/scenario.h"
#include "bgpcmp/topology/world_snapshot.h"

namespace bgpcmp::core {

/// FNV-1a over EVERY ScenarioConfig field — seeds included, strings by bytes,
/// doubles by bit pattern — in declaration order. Unlike the WorldCache key
/// (which splits seed from knobs) a serving snapshot stores one fully bound
/// world, so everything folds into one hash. Adding a config field requires
/// extending this; ServingSnapshotTest.FingerprintCoversEveryConfigSection
/// trips when a knob stops changing the hash.
[[nodiscard]] std::uint64_t scenario_config_fingerprint(const ScenarioConfig& config);

/// What load_serving_snapshot() hands back: the rehydrated scenario plus the
/// warmed origins and their tables, in saved order (provider first). Tables
/// reference the scenario's graph, so keep the scenario alive.
struct ServingState {
  std::unique_ptr<Scenario> scenario;
  std::vector<topo::AsIndex> warmed;
  std::vector<bgp::RouteTable> tables;
};

/// Serialize `scenario` and the warmed tables for `warmed` (every origin must
/// have a table in `tables` — BGPCMP_CHECKed) into a four-section snapshot.
BGPCMP_PHASE(warm)
BGPCMP_SNAPSHOT_CODEC(serving, writer)
void save_serving_snapshot(const std::string& path, const Scenario& scenario,
                           std::span<const topo::AsIndex> warmed,
                           const bgp::RouteCache& tables);

/// Load, verify (magic, version, payload hash, config fingerprint; plus the
/// recomputed world fingerprint under SnapshotVerify::kFull — see that enum
/// for the two-tier integrity rationale), and rehydrate. Any mismatch trips a
/// BGPCMP_CHECK — callers that want a fallback rebuild catch CheckError via
/// ScopedCheckThrows.
BGPCMP_PHASE(warm)
BGPCMP_SNAPSHOT_CODEC(serving, reader)
[[nodiscard]] ServingState load_serving_snapshot(
    const std::string& path, const ScenarioConfig& config,
    topo::SnapshotVerify verify = topo::SnapshotVerify::kFull);

}  // namespace bgpcmp::core
