// Study 2 (§3.2): BGP anycast vs DNS redirection for a CDN.
//
// Reproduces the Microsoft/Bing analysis: paired beacon measurements give the
// per-request gap between anycast and the best unicast front-end (Fig 3);
// an LDNS-granularity redirection system then chooses anycast-or-unicast per
// resolver cluster from stale measurements, and its realized improvement over
// anycast is evaluated per weighted /24 (Fig 4).
#pragma once

#include "bgpcmp/cdn/anycast_cdn.h"
#include "bgpcmp/cdn/dns_redirect.h"
#include "bgpcmp/core/scenario.h"
#include "bgpcmp/stats/cdf.h"

namespace bgpcmp::core {

struct AnycastStudyConfig {
  std::uint64_t seed = 2001;
  /// Beacon rounds per client for the Fig 3 request population.
  int beacon_rounds = 4;
  /// Time of the redirection decision; evaluation follows it.
  SimTime decision_time = SimTime::days(2.0);
  /// Windows over which each client's improvement median/p75 is taken.
  int eval_windows = 12;
  SimTime eval_window_spacing = SimTime::hours(4.0);
  cdn::OdinConfig odin;
  cdn::DnsRedirectConfig dns;
};

struct AnycastStudyResult {
  // Fig 3: CCDF source data — per-request (anycast - best unicast) ms,
  // request-weighted, split by client region.
  stats::WeightedCdf fig3_world;
  stats::WeightedCdf fig3_europe;
  stats::WeightedCdf fig3_us;

  // Fig 4: per weighted /24, median and 75th-pct improvement over anycast
  // from following the (possibly wrong) DNS redirection decision.
  stats::WeightedCdf fig4_median;
  stats::WeightedCdf fig4_p75;

  // Headlines quoted in §3.2.
  double frac_within_10ms = 0.0;        ///< requests with gap <= 10 ms
  double frac_unicast_100ms_faster = 0.0;  ///< requests with gap >= 100 ms
  double fig4_improved_fraction = 0.0;  ///< /24s with median improvement > eps
  double fig4_worse_fraction = 0.0;     ///< /24s where redirection hurt
};

[[nodiscard]] AnycastStudyResult run_anycast_study(const Scenario& scenario,
                                                   const cdn::AnycastCdn& cdn,
                                                   const AnycastStudyConfig& config = {});

}  // namespace bgpcmp::core
