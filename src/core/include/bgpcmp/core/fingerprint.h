// Canonical result-table rendering and hashing for the determinism audit.
//
// A scenario's "fingerprint" is the FNV-1a hash of every result table the
// substrate can emit for it — topology summary, a route-table dump, the
// anycast catchment, demand and latency samples, and (optionally) scaled-down
// runs of the three paper studies. Two builds of the same config must render
// byte-identical tables; any divergence means model state leaked in from
// iteration order, uninitialized memory, wall-clock reads, or an unseeded
// RNG. tools/determinism_audit.cpp runs this over the whole registry and is
// the gate future parallelism PRs must keep green.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bgpcmp/core/scenario.h"

namespace bgpcmp::core {

/// 64-bit FNV-1a over arbitrary bytes.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

struct FingerprintOptions {
  /// Also run scaled-down pop/anycast/wan studies (slower, deeper coverage).
  bool run_studies = true;
  /// Render only the generated world: build_internet without a provider,
  /// clients, or studies. Exercises (and times) pure topology generation at
  /// scales where a full scenario would be too slow to audit; implies no
  /// studies.
  bool topology_only = false;
  /// Render a churn run instead of a full scenario: warm a RouteCache over
  /// strided eyeball origins, drive deterministic event waves through the
  /// parallel reconverge path (bgp/churn.h), and emit per-wave stats plus
  /// final table digests. Puts the incremental re-convergence code under the
  /// same double-run / --compare-threads gate as everything else.
  bool churn = false;
  /// Render a serving run instead of a full scenario: build a ServingWorld,
  /// save and reload it as a serving snapshot, then answer one query batch
  /// from the fresh and the loaded world (core/serving.h) and emit both
  /// digests plus sampled answers. A divergence — between runs, across
  /// --compare-threads widths, or between the fresh and loaded columns inside
  /// one run — pins down snapshot or batching nondeterminism.
  bool serving = false;
};

/// Build a fresh world from `config` and render its canonical result tables.
[[nodiscard]] std::string render_result_tables(const ScenarioConfig& config,
                                               const FingerprintOptions& options = {});

/// fnv1a64 over render_result_tables.
[[nodiscard]] std::uint64_t scenario_fingerprint(const ScenarioConfig& config,
                                                 const FingerprintOptions& options = {});

}  // namespace bgpcmp::core
