#include "bgpcmp/core/tail.h"

#include "bgpcmp/measure/http.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

TailResult analyze_tail(const PopStudyResult& study,
                        std::span<const measure::TierSample> wan_samples,
                        const TailConfig& config) {
  TailResult result;
  for (const double threshold : config.thresholds_ms) {
    TailThresholdRow row;
    row.threshold_ms = threshold;
    row.traffic_fraction = study.improvable_traffic_fraction(threshold);
    row.estimated_sessions = row.traffic_fraction * config.total_sessions;
    result.rows.push_back(row);
  }

  const auto fig1 = study.fig1_cdf();
  if (!fig1.empty()) {
    result.p95_improvement_ms = fig1.quantile(0.95);
    result.p99_improvement_ms = fig1.quantile(0.99);
  }

  if (!wan_samples.empty()) {
    // The paper's footnote: 10 MB HTTP GETs over both tiers. Model each
    // download with the TCP transfer model and compare goodputs.
    constexpr double kDownloadBytes = 10.0e6;
    std::vector<double> ratios;
    ratios.reserve(wan_samples.size());
    for (const auto& s : wan_samples) {
      if (s.premium.value() <= 0.0 || s.standard.value() <= 0.0) continue;
      const double prem = measure::goodput_mbps(kDownloadBytes, s.premium);
      const double stan = measure::goodput_mbps(kDownloadBytes, s.standard);
      if (stan > 0.0) ratios.push_back(prem / stan);
    }
    if (!ratios.empty()) result.goodput_ratio_median = stats::median(ratios);
  }
  return result;
}

}  // namespace bgpcmp::core
