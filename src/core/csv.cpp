#include "bgpcmp/core/csv.h"

#include <cstdlib>
#include <fstream>

#include "bgpcmp/netbase/check.h"
#include "bgpcmp/stats/table.h"

namespace bgpcmp::core {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void emit_row(std::ofstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << escape(row[i]);
  }
  out << '\n';
}

}  // namespace

bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out{path};
  if (!out) return false;
  emit_row(out, header);
  for (const auto& row : rows) {
    BGPCMP_CHECK_EQ(row.size(), header.size(), "CSV row width must match the header");
    emit_row(out, row);
  }
  return static_cast<bool>(out);
}

bool write_series_csv(const std::string& path, const std::string& x_label,
                      const std::vector<std::string>& names,
                      const std::vector<const stats::WeightedCdf*>& cdfs, double lo,
                      double hi, std::size_t points, bool ccdf) {
  BGPCMP_CHECK_EQ(names.size(), cdfs.size(), "one name per CDF");
  std::vector<std::string> header{x_label};
  header.insert(header.end(), names.begin(), names.end());
  std::vector<std::vector<stats::SeriesPoint>> series;
  series.reserve(cdfs.size());
  for (const auto* cdf : cdfs) {
    series.push_back(ccdf ? cdf->ccdf_series(lo, hi, points)
                          : cdf->cdf_series(lo, hi, points));
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{stats::fmt(series[0][i].x, 4)};
    for (const auto& s : series) row.push_back(stats::fmt(s[i].y, 6));
    rows.push_back(std::move(row));
  }
  return write_csv(path, header, rows);
}

std::optional<std::string> csv_export_dir() {
  const char* dir = std::getenv("BGPCMP_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string{dir};
}

}  // namespace bgpcmp::core
