#include "bgpcmp/core/study_anycast.h"

#include <algorithm>
#include <string>
#include <vector>

#include "bgpcmp/cdn/odin.h"
#include "bgpcmp/latency/rtt_sampler.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

AnycastStudyResult run_anycast_study(const Scenario& scenario,
                                     const cdn::AnycastCdn& cdn,
                                     const AnycastStudyConfig& config) {
  AnycastStudyResult result;
  const topo::CityDb& db = scenario.internet.city_db();
  cdn::OdinBeacons beacons{&cdn, &scenario.latency, &scenario.clients, config.odin};
  Rng root{config.seed};

  // ---- Fig 3: per-request anycast vs best unicast -----------------------
  {
    Rng rng = root.fork("fig3");
    for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
      const auto& client = scenario.clients.at(id);
      const double request_weight = scenario.demand.popularity(id);
      for (int round = 0; round < config.beacon_rounds; ++round) {
        const SimTime t = SimTime::hours(6.0 * (round + 1));
        cdn::BeaconResult beacon;
        if (!beacons.measure(id, t, rng, beacon)) continue;
        const double gap = beacon.anycast.value() - beacon.best_unicast().value();
        result.fig3_world.add(gap, request_weight);
        const auto& city = db.at(client.city);
        if (city.region == topo::Region::Europe) {
          result.fig3_europe.add(gap, request_weight);
        }
        if (city.country == "United States") {
          result.fig3_us.add(gap, request_weight);
        }
      }
    }
    result.frac_within_10ms = result.fig3_world.fraction_at_most(10.0);
    result.frac_unicast_100ms_faster = result.fig3_world.fraction_above(100.0);
  }

  // ---- Fig 4: LDNS-granularity DNS redirection vs anycast ----------------
  {
    cdn::DnsRedirector redirector{&cdn, &beacons, &scenario.clients, config.dns};
    const auto clusters = redirector.build_clusters();
    const lat::RttSampler sampler;
    Rng rng = root.fork("fig4");

    double improved_weight = 0.0;
    double worse_weight = 0.0;
    double total_weight = 0.0;
    constexpr double kEps = 1.0;  // ms; deadband around "no change"

    for (const auto& cluster : clusters) {
      const auto decision = redirector.decide(cluster, config.decision_time, rng);
      for (const auto member : cluster.members) {
        const auto& client = scenario.clients.at(member);
        std::vector<double> improvements;
        improvements.reserve(static_cast<std::size_t>(config.eval_windows));
        for (int w = 0; w < config.eval_windows; ++w) {
          const SimTime t = config.decision_time +
                            SimTime{config.eval_window_spacing.seconds() * (w + 1)};
          if (!decision.use_unicast) {
            improvements.push_back(0.0);  // redirected to anycast: no change
            continue;
          }
          const auto anycast = cdn.anycast_route(client);
          const auto unicast = cdn.unicast_route(client, decision.pop);
          if (!anycast.valid() || !unicast.valid()) continue;
          const auto any_ms =
              sampler.sample_ping(scenario.latency
                                      .rtt(anycast.path, t, client.access,
                                           client.origin_as, client.city)
                                      .total(),
                                  rng);
          const auto uni_ms =
              sampler.sample_ping(scenario.latency
                                      .rtt(unicast, t, client.access,
                                           client.origin_as, client.city)
                                      .total(),
                                  rng);
          improvements.push_back(any_ms.value() - uni_ms.value());
        }
        if (improvements.empty()) continue;
        const double med = stats::quantile(improvements, 0.5);
        const double p75 = stats::quantile(improvements, 0.75);
        result.fig4_median.add(med, client.user_weight);
        result.fig4_p75.add(p75, client.user_weight);
        total_weight += client.user_weight;
        if (med > kEps) improved_weight += client.user_weight;
        if (med < -kEps) worse_weight += client.user_weight;
      }
    }
    if (total_weight > 0.0) {
      result.fig4_improved_fraction = improved_weight / total_weight;
      result.fig4_worse_fraction = worse_weight / total_weight;
    }
  }
  return result;
}

}  // namespace bgpcmp::core
