#include "bgpcmp/core/study_anycast.h"

#include <algorithm>
#include <string>
#include <vector>

#include "bgpcmp/cdn/odin.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/latency/rtt_sampler.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

AnycastStudyResult run_anycast_study(const Scenario& scenario,
                                     const cdn::AnycastCdn& cdn,
                                     const AnycastStudyConfig& config) {
  AnycastStudyResult result;
  const topo::CityDb& db = scenario.internet.city_db();
  cdn::OdinBeacons beacons{&cdn, &scenario.latency, &scenario.clients, config.odin};
  Rng root{config.seed};

  // ---- Fig 3: per-request anycast vs best unicast -----------------------
  {
    // Warm-then-plan (docs/PARALLELISM.md): the deterministic halves of all
    // beacons — route resolution and base RTTs — fan out over the pool; the
    // noise draws then replay serially in the historical (client, round)
    // order, so the stream consumed from `rng` is byte-identical to the old
    // all-in-one loop at any thread count.
    const auto plans = exec::parallel_map(
        scenario.clients.size(), [&](std::size_t id) {
          std::vector<cdn::BeaconPlan> rounds;
          rounds.reserve(static_cast<std::size_t>(config.beacon_rounds));
          for (int round = 0; round < config.beacon_rounds; ++round) {
            const SimTime t = SimTime::hours(6.0 * (round + 1));
            rounds.push_back(beacons.plan(static_cast<traffic::PrefixId>(id), t));
          }
          return rounds;
        });
    Rng rng = root.fork("fig3");
    for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
      const auto& client = scenario.clients.at(id);
      const double request_weight = scenario.demand.popularity(id);
      for (int round = 0; round < config.beacon_rounds; ++round) {
        cdn::BeaconResult beacon;
        if (!beacons.sample(plans[id][static_cast<std::size_t>(round)], rng, beacon)) {
          continue;
        }
        const double gap = beacon.anycast.value() - beacon.best_unicast().value();
        result.fig3_world.add(gap, request_weight);
        const auto& city = db.at(client.city);
        if (city.region == topo::Region::Europe) {
          result.fig3_europe.add(gap, request_weight);
        }
        if (city.country == "United States") {
          result.fig3_us.add(gap, request_weight);
        }
      }
    }
    result.frac_within_10ms = result.fig3_world.fraction_at_most(10.0);
    result.frac_unicast_100ms_faster = result.fig3_world.fraction_above(100.0);
  }

  // ---- Fig 4: LDNS-granularity DNS redirection vs anycast ----------------
  {
    cdn::DnsRedirector redirector{&cdn, &beacons, &scenario.clients, config.dns};
    const auto clusters = redirector.build_clusters();
    const lat::RttSampler sampler;
    Rng rng = root.fork("fig4");

    double improved_weight = 0.0;
    double worse_weight = 0.0;
    double total_weight = 0.0;
    constexpr double kEps = 1.0;  // ms; deadband around "no change"

    // Per-member deterministic work for one cluster whose decision picked
    // unicast: routes resolved once (they do not vary across windows) and
    // base RTTs computed per window.
    struct MemberPlan {
      bool valid = false;           ///< both routes valid; false => no draws
      std::vector<double> any_base;  ///< per-window anycast base RTT (ms)
      std::vector<double> uni_base;  ///< per-window unicast base RTT (ms)
    };

    for (const auto& cluster : clusters) {
      // The decision draws from the shared stream, so clusters stay serial;
      // within a cluster the per-member per-window base RTTs fan out over the
      // pool before the (serial) noise draws, preserving the historical
      // decide(c), samples(c), decide(c+1), ... draw order exactly.
      const auto decision = redirector.decide(cluster, config.decision_time, rng);
      std::vector<MemberPlan> plans;
      if (decision.use_unicast) {
        plans = exec::parallel_map(cluster.members.size(), [&](std::size_t mi) {
          const auto& client = scenario.clients.at(cluster.members[mi]);
          MemberPlan plan;
          const auto anycast = cdn.anycast_route(client);
          const auto unicast = cdn.unicast_route(client, decision.pop);
          if (!anycast.valid() || !unicast.valid()) return plan;
          plan.valid = true;
          plan.any_base.reserve(static_cast<std::size_t>(config.eval_windows));
          plan.uni_base.reserve(static_cast<std::size_t>(config.eval_windows));
          for (int w = 0; w < config.eval_windows; ++w) {
            const SimTime t =
                config.decision_time +
                SimTime{config.eval_window_spacing.seconds() * (w + 1)};
            plan.any_base.push_back(scenario.latency
                                        .rtt(anycast.path, t, client.access,
                                             client.origin_as, client.city)
                                        .total()
                                        .value());
            plan.uni_base.push_back(scenario.latency
                                        .rtt(unicast, t, client.access,
                                             client.origin_as, client.city)
                                        .total()
                                        .value());
          }
          return plan;
        });
      }
      for (std::size_t mi = 0; mi < cluster.members.size(); ++mi) {
        const auto member = cluster.members[mi];
        const auto& client = scenario.clients.at(member);
        std::vector<double> improvements;
        improvements.reserve(static_cast<std::size_t>(config.eval_windows));
        if (!decision.use_unicast) {
          // Redirected to anycast: no change, and no draws.
          improvements.assign(static_cast<std::size_t>(config.eval_windows), 0.0);
        } else if (plans[mi].valid) {
          for (int w = 0; w < config.eval_windows; ++w) {
            const auto wi = static_cast<std::size_t>(w);
            const auto any_ms =
                sampler.sample_ping(Milliseconds{plans[mi].any_base[wi]}, rng);
            const auto uni_ms =
                sampler.sample_ping(Milliseconds{plans[mi].uni_base[wi]}, rng);
            improvements.push_back(any_ms.value() - uni_ms.value());
          }
        }
        if (improvements.empty()) continue;
        const double med = stats::quantile(improvements, 0.5);
        const double p75 = stats::quantile(improvements, 0.75);
        result.fig4_median.add(med, client.user_weight);
        result.fig4_p75.add(p75, client.user_weight);
        total_weight += client.user_weight;
        if (med > kEps) improved_weight += client.user_weight;
        if (med < -kEps) worse_weight += client.user_weight;
      }
    }
    if (total_weight > 0.0) {
      result.fig4_improved_fraction = improved_weight / total_weight;
      result.fig4_worse_fraction = worse_weight / total_weight;
    }
  }
  return result;
}

}  // namespace bgpcmp::core
