#include "bgpcmp/core/serving.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bgpcmp/cdn/edge_fabric.h"
#include "bgpcmp/core/fingerprint.h"
#include "bgpcmp/core/snapshot.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/latency/path_model.h"
#include "bgpcmp/netbase/check.h"
#include "bgpcmp/netbase/rng.h"

namespace bgpcmp::core {
namespace {

/// The warm set: provider first, then client origin ASes by summed demand
/// popularity descending, lower AsIndex on ties; at most `n` origins total
/// (always at least the provider).
std::vector<topo::AsIndex> rank_warm_origins(const Scenario& s, std::size_t n) {
  std::vector<double> weight(s.internet.graph.as_count(), 0.0);
  const auto prefixes = s.clients.prefixes();
  for (traffic::PrefixId id = 0; id < prefixes.size(); ++id)
    weight[prefixes[id].origin_as] += s.demand.popularity(id);

  std::vector<topo::AsIndex> origins;
  for (topo::AsIndex as = 0; as < weight.size(); ++as)
    if (weight[as] > 0.0 && as != s.provider.as_index()) origins.push_back(as);
  std::sort(origins.begin(), origins.end(), [&](topo::AsIndex a, topo::AsIndex b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });

  const std::size_t cap = n == 0 ? 1 : n;
  std::vector<topo::AsIndex> out;
  out.reserve(std::min(cap, origins.size() + 1));
  out.push_back(s.provider.as_index());
  for (const topo::AsIndex as : origins) {
    if (out.size() >= cap) break;
    out.push_back(as);
  }
  return out;
}

/// Popularity-weighted draw: the index whose CDF bucket contains `u`.
std::size_t cdf_pick(std::span<const double> cdf, double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
}

}  // namespace

ServingWorld::ServingWorld(std::unique_ptr<Scenario> scenario, ServingConfig serving)
    : scenario_(std::move(scenario)),
      serving_(serving),
      tables_(&scenario_->internet.graph),
      warmed_(rank_warm_origins(*scenario_, serving.warm_origins)),
      anycast_spec_(bgp::OriginSpec::everywhere(scenario_->provider.as_index())) {
  warm_serving_tables();
  index_prefixes();
}

ServingWorld::ServingWorld(std::unique_ptr<Scenario> scenario,
                           std::vector<topo::AsIndex> warmed,
                           std::vector<bgp::RouteTable> tables)
    : scenario_(std::move(scenario)),
      serving_{warmed.size()},
      tables_(&scenario_->internet.graph),
      warmed_(std::move(warmed)),
      anycast_spec_(bgp::OriginSpec::everywhere(scenario_->provider.as_index())) {
  BGPCMP_CHECK_EQ(warmed_.size(), tables.size(),
                  "every warmed origin needs its snapshot table");
  for (std::size_t i = 0; i < warmed_.size(); ++i)
    tables_.install(warmed_[i], std::move(tables[i]));
  // All slots are installed, so this recomputes nothing (first fill wins) —
  // but both construction paths run it, so detlint's constructor discharge
  // covers every serve-phase read the same way.
  warm_serving_tables();
  index_prefixes();
}

void ServingWorld::warm_serving_tables() {
  tables_.warm(warmed_, exec::global_pool());
}

void ServingWorld::index_prefixes() {
  origin_warmed_.assign(scenario_->internet.graph.as_count(), 0);
  for (const topo::AsIndex as : warmed_) origin_warmed_[as] = 1;

  const auto prefixes = scenario_->clients.prefixes();
  BGPCMP_CHECK(!prefixes.empty(), "serving a world with no client prefixes");
  cum_all_.reserve(prefixes.size());
  double total = 0.0;
  for (traffic::PrefixId id = 0; id < prefixes.size(); ++id) {
    total += scenario_->demand.popularity(id);
    cum_all_.push_back(total);
  }
  double egress_total = 0.0;
  for (traffic::PrefixId id = 0; id < prefixes.size(); ++id) {
    if (!origin_warmed_[prefixes[id].origin_as]) continue;
    egress_total += scenario_->demand.popularity(id);
    egress_prefixes_.push_back(id);
    cum_egress_.push_back(egress_total);
  }
  BGPCMP_CHECK(!egress_prefixes_.empty(),
               "no client prefix originates from a warmed origin");
}

std::unique_ptr<ServingWorld> ServingWorld::build(const ScenarioConfig& config,
                                                  const ServingConfig& serving) {
  return std::unique_ptr<ServingWorld>(
      new ServingWorld(Scenario::make(config), serving));
}

std::unique_ptr<ServingWorld> ServingWorld::load(const std::string& path,
                                                 const ScenarioConfig& config,
                                                 topo::SnapshotVerify verify) {
  ServingState state = load_serving_snapshot(path, config, verify);
  return std::unique_ptr<ServingWorld>(new ServingWorld(
      std::move(state.scenario), std::move(state.warmed), std::move(state.tables)));
}

void ServingWorld::save(const std::string& path) const {
  save_serving_snapshot(path, *scenario_, warmed_, tables_);
}

std::vector<Query> ServingWorld::generate_queries(std::size_t count,
                                                  std::uint64_t seed) const {
  Rng rng{seed};
  const std::int64_t horizon =
      SimTime::days(scenario_->config.congestion.horizon_days).seconds();
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.kind = static_cast<Query::Kind>(i % 3);
    if (q.kind == Query::Kind::Egress) {
      const std::size_t pick = cdf_pick(cum_egress_, rng.uniform(0.0, cum_egress_.back()));
      q.prefix = egress_prefixes_[pick];
    } else {
      q.prefix = static_cast<traffic::PrefixId>(
          cdf_pick(cum_all_, rng.uniform(0.0, cum_all_.back())));
    }
    q.t = SimTime{rng.uniform_int(0, horizon - 1)};
    out.push_back(q);
  }
  return out;
}

std::string ServingWorld::answer(const Query& query) const {
  const traffic::ClientPrefix& client = scenario_->clients.at(query.prefix);
  switch (query.kind) {
    case Query::Kind::Latency:
      return answer_latency(client, query);
    case Query::Kind::Egress:
      return answer_egress(client, query);
    case Query::Kind::Catchment:
      return answer_catchment(client, query);
  }
  BGPCMP_CHECK(false, "unknown query kind");
  return {};
}

std::string ServingWorld::answer_catchment(const traffic::ClientPrefix& client,
                                           const Query& query) const {
  const topo::AsGraph& graph = scenario_->internet.graph;
  char buf[160];
  const bgp::RouteTable* table = tables_.find(scenario_->provider.as_index());
  if (table == nullptr || !table->reachable(client.origin_as)) {
    std::snprintf(buf, sizeof buf, "catchment prefix=%u unreachable", query.prefix);
    return buf;
  }
  const std::vector<topo::AsIndex> as_path = table->path(client.origin_as);
  lat::GeoPathOptions opts;
  opts.origin_scope = &anycast_spec_;
  const lat::GeoPath path =
      lat::build_geo_path(graph, *scenario_->internet.cities, as_path, client.city,
                          topo::kNoCity, opts);
  if (!path.valid()) {
    std::snprintf(buf, sizeof buf, "catchment prefix=%u norealization", query.prefix);
    return buf;
  }
  const std::optional<cdn::PopId> pop = scenario_->provider.pop_in(path.entry_city);
  BGPCMP_CHECK(pop.has_value(), "anycast entry link must land at a PoP");
  std::snprintf(buf, sizeof buf,
                "catchment prefix=%u pop=%u entry_city=%u entry_link=%u hops=%zu",
                query.prefix, *pop, static_cast<unsigned>(path.entry_city),
                path.entry_link, as_path.size());
  return buf;
}

std::string ServingWorld::answer_latency(const traffic::ClientPrefix& client,
                                         const Query& query) const {
  const topo::AsGraph& graph = scenario_->internet.graph;
  char buf[160];
  const bgp::RouteTable* table = tables_.find(scenario_->provider.as_index());
  if (table == nullptr || !table->reachable(client.origin_as)) {
    std::snprintf(buf, sizeof buf, "latency prefix=%u unreachable", query.prefix);
    return buf;
  }
  const std::vector<topo::AsIndex> as_path = table->path(client.origin_as);
  lat::GeoPathOptions opts;
  opts.origin_scope = &anycast_spec_;
  const lat::GeoPath path =
      lat::build_geo_path(graph, *scenario_->internet.cities, as_path, client.city,
                          topo::kNoCity, opts);
  if (!path.valid()) {
    std::snprintf(buf, sizeof buf, "latency prefix=%u norealization", query.prefix);
    return buf;
  }
  const std::optional<cdn::PopId> pop = scenario_->provider.pop_in(path.entry_city);
  BGPCMP_CHECK(pop.has_value(), "anycast entry link must land at a PoP");
  const lat::RttBreakdown rtt = scenario_->latency.rtt(
      path, query.t, client.access, client.origin_as, client.city);
  std::snprintf(buf, sizeof buf, "latency prefix=%u pop=%u rtt_ms=%.3f", query.prefix,
                *pop, rtt.total().value());
  return buf;
}

std::string ServingWorld::answer_egress(const traffic::ClientPrefix& client,
                                        const Query& query) const {
  const topo::AsGraph& graph = scenario_->internet.graph;
  const topo::CityDb& cities = *scenario_->internet.cities;
  const cdn::ContentProvider& provider = scenario_->provider;
  char buf[200];
  const cdn::PopId pop =
      provider.serving_pop(graph, cities, client.origin_as, client.city);
  const bgp::RouteTable* table = tables_.find(client.origin_as);
  BGPCMP_CHECK(table != nullptr, "egress queries must target warmed origins");
  const std::vector<cdn::EgressOption> ranked =
      cdn::edge_fabric::rank_by_policy(graph, provider.egress_options(graph, *table, pop));
  if (ranked.empty()) {
    std::snprintf(buf, sizeof buf, "egress prefix=%u pop=%u options=0", query.prefix,
                  pop);
    return buf;
  }
  const cdn::EgressOption& best = ranked.front();
  const lat::GeoPath path = cdn::edge_fabric::egress_path(
      graph, cities, provider.as_index(), provider.pop(pop), best, client.city);
  double best_ms = -1.0;
  if (path.valid()) {
    best_ms = scenario_->latency
                  .rtt(path, query.t, client.access, client.origin_as, client.city)
                  .total()
                  .value();
  }
  std::snprintf(buf, sizeof buf,
                "egress prefix=%u pop=%u options=%zu best_kind=%u best_len=%u "
                "best_nh=%u rtt_ms=%.3f",
                query.prefix, pop, ranked.size(), static_cast<unsigned>(best.kind),
                static_cast<unsigned>(best.route.length), best.route.neighbor, best_ms);
  return buf;
}

std::vector<std::string> QueryServer::answer_batch(
    std::span<const Query> queries) const {
  std::vector<std::string> out(queries.size());
  exec::parallel_chunks(*pool_, queries.size(), chunk_,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i)
                            out[i] = world_->answer(queries[i]);
                        });
  return out;
}

std::uint64_t answers_digest(std::span<const std::string> answers) {
  std::string joined;
  std::size_t bytes = 0;
  for (const std::string& a : answers) bytes += a.size() + 1;
  joined.reserve(bytes);
  for (const std::string& a : answers) {
    if (!joined.empty()) joined.push_back('\n');
    joined.append(a);
  }
  return fnv1a64(joined);
}

}  // namespace bgpcmp::core
