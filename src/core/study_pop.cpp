#include "bgpcmp/core/study_pop.h"

#include <algorithm>
#include <map>
#include <string>

#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/cdn/edge_fabric.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/latency/rtt_sampler.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

namespace {

/// The ranked egress routes and their realized paths for one <PoP, prefix>.
struct PairPlan {
  cdn::PopId pop = cdn::kNoPop;
  traffic::PrefixId prefix = 0;
  std::vector<EgressRouteInfo> routes;
  std::vector<lat::GeoPath> paths;
};

float median_of(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return static_cast<float>(stats::quantile_sorted(samples, 0.5));
}

}  // namespace

float PopPrefixSeries::diff(std::size_t w) const {
  float best_alt = medians[1][w];
  for (std::size_t r = 2; r < medians.size(); ++r) {
    best_alt = std::min(best_alt, medians[r][w]);
  }
  return medians[0][w] - best_alt;
}

PopStudyResult run_pop_study(const Scenario& scenario, const PopStudyConfig& config) {
  const auto& graph = scenario.internet.graph;
  const topo::CityDb& db = scenario.internet.city_db();
  PopStudyResult result;

  // Evaluated windows (strided 15-minute grid).
  const auto grid = fifteen_minute_grid(config.days);
  for (std::size_t i = 0; i < grid.size();
       i += static_cast<std::size_t>(std::max(1, config.window_stride))) {
    result.windows.push_back(grid[i]);
  }

  // Route tables per client origin AS (shared across that AS's prefixes):
  // warm every distinct origin over the pool, then plan against the
  // read-only cache — the warm-then-plan pattern from docs/PARALLELISM.md.
  bgp::RouteCache tables{&graph};
  std::vector<topo::AsIndex> origins;
  origins.reserve(scenario.clients.size());
  for (const auto& client : scenario.clients.prefixes()) {
    origins.push_back(client.origin_as);
  }
  tables.warm(origins, exec::global_pool());

  // Plan every <PoP, prefix> pair with at least two egress routes. Each pair
  // reads only the immutable scenario and the warmed cache, so planning fans
  // out too; under-routed pairs come back empty and are dropped in order.
  auto planned = exec::parallel_map(scenario.clients.size(), [&](std::size_t id) {
    const auto& client = scenario.clients.at(id);
    const cdn::PopId pop =
        scenario.provider.serving_pop(graph, db, client.origin_as, client.city);
    const bgp::RouteTable* table = tables.find(client.origin_as);
    auto options = cdn::edge_fabric::rank_by_policy(
        graph, scenario.provider.egress_options(graph, *table, pop));
    PairPlan plan;
    if (options.size() < 2) return plan;
    if (options.size() > static_cast<std::size_t>(config.top_k_routes)) {
      options.resize(static_cast<std::size_t>(config.top_k_routes));
    }
    plan.pop = pop;
    plan.prefix = static_cast<traffic::PrefixId>(id);
    for (const auto& opt : options) {
      auto path = cdn::edge_fabric::egress_path(graph, db, scenario.provider.as_index(),
                                                scenario.provider.pop(pop), opt,
                                                client.city);
      if (!path.valid()) continue;
      EgressRouteInfo info;
      info.neighbor = opt.route.neighbor;
      info.role = opt.route.neighbor_role;
      info.kind = opt.kind;
      info.link = opt.link;
      info.as_path_len = opt.route.length;
      plan.routes.push_back(info);
      plan.paths.push_back(std::move(path));
    }
    if (plan.routes.size() < 2) plan.routes.clear();
    return plan;
  });
  std::vector<PairPlan> plans;
  for (auto& plan : planned) {
    if (plan.routes.size() >= 2) plans.push_back(std::move(plan));
  }

  // Measure: spray sessions over each route in every window. Plans are
  // independent by construction — each forks its own RNG stream keyed by
  // <prefix, pop> and reads only immutable scenario state (the congestion
  // field's lazy access cache is internally synchronized) — so they fan out
  // over the exec pool, collected in plan order. Output is byte-identical
  // for any thread count; tools/determinism_audit --compare-threads checks.
  const lat::RttSampler sampler;
  const Rng root{config.seed};
  result.series = exec::parallel_map(plans.size(), [&](std::size_t plan_index) {
    const PairPlan& plan = plans[plan_index];
    const auto& client = scenario.clients.at(plan.prefix);
    Rng rng = root.fork("pair-" + std::to_string(plan.prefix) + "-" +
                        std::to_string(plan.pop));
    PopPrefixSeries series;
    series.pop = plan.pop;
    series.prefix = plan.prefix;
    series.routes = plan.routes;
    const std::size_t n_routes = plan.routes.size();
    const std::size_t n_windows = result.windows.size();
    series.volume.resize(n_windows);
    series.medians.assign(n_routes, std::vector<float>(n_windows));
    series.ci_lower.resize(n_windows);
    series.ci_upper.resize(n_windows);

    const double popularity = scenario.demand.popularity(plan.prefix);
    std::vector<std::vector<double>> route_samples(n_routes);
    for (std::size_t w = 0; w < n_windows; ++w) {
      const SimTime t = result.windows[w].midpoint();
      series.volume[w] =
          static_cast<float>(scenario.demand.volume(plan.prefix, t).value());
      const int n_sessions =
          traffic::sample_session_count(config.sessions, popularity, rng);
      for (std::size_t r = 0; r < n_routes; ++r) {
        const auto base = scenario.latency
                              .rtt(plan.paths[r], t, client.access,
                                   client.origin_as, client.city)
                              .total();
        auto& samples = route_samples[r];
        samples.clear();
        for (int s = 0; s < n_sessions; ++s) {
          const int rts = traffic::sample_round_trips(config.sessions, rng);
          samples.push_back(sampler.sample_min_rtt(base, rts, rng).value());
        }
        series.medians[r][w] = median_of(samples);
      }
      // CI of (BGP - best alternate) from the sprayed samples.
      std::size_t best_alt = 1;
      for (std::size_t r = 2; r < n_routes; ++r) {
        if (series.medians[r][w] < series.medians[best_alt][w]) best_alt = r;
      }
      const auto ci = stats::bootstrap_median_diff_ci(
          route_samples[0], route_samples[best_alt], rng, config.bootstrap);
      series.ci_lower[w] = static_cast<float>(ci.lower);
      series.ci_upper[w] = static_cast<float>(ci.upper);
    }
    return series;
  });
  return result;
}

stats::WeightedCdf PopStudyResult::fig1_cdf(Fig1Bound bound) const {
  stats::WeightedCdf cdf;
  for (const auto& s : series) {
    for (std::size_t w = 0; w < windows.size(); ++w) {
      double value = s.diff(w);
      if (bound == Fig1Bound::Lower) value = s.ci_lower[w];
      if (bound == Fig1Bound::Upper) value = s.ci_upper[w];
      cdf.add(value, s.volume[w]);
    }
  }
  return cdf;
}

namespace {

/// Weighted CDF of (best class-A median) - (best class-B median) over
/// <pair, window> entries where both classes exist.
template <typename ClassOf>
stats::WeightedCdf class_diff_cdf(const PopStudyResult& result, ClassOf class_of) {
  stats::WeightedCdf cdf;
  for (const auto& s : result.series) {
    std::vector<std::size_t> class_a;
    std::vector<std::size_t> class_b;
    for (std::size_t r = 0; r < s.routes.size(); ++r) {
      const int c = class_of(s.routes[r]);
      if (c == 0) class_a.push_back(r);
      if (c == 1) class_b.push_back(r);
    }
    if (class_a.empty() || class_b.empty()) continue;
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
      auto best = [&](const std::vector<std::size_t>& idx) {
        float m = s.medians[idx[0]][w];
        for (const auto r : idx) m = std::min(m, s.medians[r][w]);
        return m;
      };
      cdf.add(best(class_a) - best(class_b), s.volume[w]);
    }
  }
  return cdf;
}

}  // namespace

stats::WeightedCdf PopStudyResult::fig2_peer_vs_transit() const {
  return class_diff_cdf(*this, [](const EgressRouteInfo& r) {
    return r.role == topo::NeighborRole::Peer ? 0
           : r.role == topo::NeighborRole::Provider ? 1
                                                    : -1;
  });
}

stats::WeightedCdf PopStudyResult::fig2_private_vs_public() const {
  return class_diff_cdf(*this, [](const EgressRouteInfo& r) {
    if (r.role != topo::NeighborRole::Peer) return -1;
    return r.kind == topo::LinkKind::PrivatePeering ? 0 : 1;
  });
}

double PopStudyResult::improvable_traffic_fraction(double threshold_ms) const {
  double improvable = 0.0;
  double total = 0.0;
  for (const auto& s : series) {
    for (std::size_t w = 0; w < windows.size(); ++w) {
      total += s.volume[w];
      if (s.diff(w) >= threshold_ms) improvable += s.volume[w];
    }
  }
  return total > 0.0 ? improvable / total : 0.0;
}

}  // namespace bgpcmp::core
