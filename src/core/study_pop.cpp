#include "bgpcmp/core/study_pop.h"

#include <algorithm>

#include "bgpcmp/bgp/route_cache.h"
#include "bgpcmp/core/pop_pair.h"
#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/latency/rtt_sampler.h"

namespace bgpcmp::core {

float PopPrefixSeries::diff(std::size_t w) const {
  float best_alt = medians[1][w];
  for (std::size_t r = 2; r < medians.size(); ++r) {
    best_alt = std::min(best_alt, medians[r][w]);
  }
  return medians[0][w] - best_alt;
}

std::vector<TimeWindow> study_windows(const PopStudyConfig& config) {
  const auto grid = fifteen_minute_grid(config.days);
  std::vector<TimeWindow> windows;
  for (std::size_t i = 0; i < grid.size();
       i += static_cast<std::size_t>(std::max(1, config.window_stride))) {
    windows.push_back(grid[i]);
  }
  return windows;
}

PopStudyResult run_pop_study(const Scenario& scenario, const PopStudyConfig& config) {
  const auto& graph = scenario.internet.graph;
  const topo::CityDb& db = scenario.internet.city_db();
  PopStudyResult result;
  result.windows = study_windows(config);

  // Route tables per client origin AS (shared across that AS's prefixes):
  // warm every distinct origin over the pool, then plan against the
  // read-only cache — the warm-then-plan pattern from docs/PARALLELISM.md.
  bgp::RouteCache tables{&graph};
  std::vector<topo::AsIndex> origins;
  origins.reserve(scenario.clients.size());
  for (const auto& client : scenario.clients.prefixes()) {
    origins.push_back(client.origin_as);
  }
  tables.warm(origins, exec::global_pool());

  // Plan every <PoP, prefix> pair with at least two egress routes. Each pair
  // reads only the immutable scenario and the warmed cache, so planning fans
  // out too; under-routed pairs come back empty and are dropped in order.
  // plan_pop_pair is shared with the streaming scale study (pop_pair.h).
  auto planned = exec::parallel_map(scenario.clients.size(), [&](std::size_t id) {
    const auto& client = scenario.clients.at(static_cast<traffic::PrefixId>(id));
    const bgp::RouteTable* table = tables.find(client.origin_as);
    return plan_pop_pair(graph, db, scenario.provider, client,
                         static_cast<traffic::PrefixId>(id), *table,
                         config.top_k_routes);
  });
  std::vector<PairPlan> plans;
  for (auto& plan : planned) {
    if (plan.measurable()) plans.push_back(std::move(plan));
  }

  // Measure: spray sessions over each route in every window. Plans are
  // independent by construction — each forks its own RNG stream keyed by
  // <prefix, pop> and reads only immutable scenario state (the congestion
  // field's lazy access cache is internally synchronized) — so they fan out
  // over the exec pool, collected in plan order. Output is byte-identical
  // for any thread count; tools/determinism_audit --compare-threads checks.
  const lat::RttSampler sampler;
  const Rng root{config.seed};
  result.series = exec::parallel_map(plans.size(), [&](std::size_t plan_index) {
    const PairPlan& plan = plans[plan_index];
    const auto& client = scenario.clients.at(plan.prefix);
    return measure_pop_pair(plan, client, result.windows,
                            scenario.demand.popularity(plan.prefix),
                            db.at(client.city).location.lon_deg,
                            scenario.config.demand, scenario.latency, sampler, root,
                            config);
  });
  return result;
}

stats::WeightedCdf PopStudyResult::fig1_cdf(Fig1Bound bound) const {
  stats::WeightedCdf cdf;
  for (const auto& s : series) {
    for (std::size_t w = 0; w < windows.size(); ++w) {
      double value = s.diff(w);
      if (bound == Fig1Bound::Lower) value = s.ci_lower[w];
      if (bound == Fig1Bound::Upper) value = s.ci_upper[w];
      cdf.add(value, s.volume[w]);
    }
  }
  return cdf;
}

namespace {

/// Weighted CDF of (best class-A median) - (best class-B median) over
/// <pair, window> entries where both classes exist.
template <typename ClassOf>
stats::WeightedCdf class_diff_cdf(const PopStudyResult& result, ClassOf class_of) {
  stats::WeightedCdf cdf;
  for (const auto& s : result.series) {
    std::vector<std::size_t> class_a;
    std::vector<std::size_t> class_b;
    for (std::size_t r = 0; r < s.routes.size(); ++r) {
      const int c = class_of(s.routes[r]);
      if (c == 0) class_a.push_back(r);
      if (c == 1) class_b.push_back(r);
    }
    if (class_a.empty() || class_b.empty()) continue;
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
      auto best = [&](const std::vector<std::size_t>& idx) {
        float m = s.medians[idx[0]][w];
        for (const auto r : idx) m = std::min(m, s.medians[r][w]);
        return m;
      };
      cdf.add(best(class_a) - best(class_b), s.volume[w]);
    }
  }
  return cdf;
}

}  // namespace

stats::WeightedCdf PopStudyResult::fig2_peer_vs_transit() const {
  return class_diff_cdf(*this, [](const EgressRouteInfo& r) {
    return r.role == topo::NeighborRole::Peer ? 0
           : r.role == topo::NeighborRole::Provider ? 1
                                                    : -1;
  });
}

stats::WeightedCdf PopStudyResult::fig2_private_vs_public() const {
  return class_diff_cdf(*this, [](const EgressRouteInfo& r) {
    if (r.role != topo::NeighborRole::Peer) return -1;
    return r.kind == topo::LinkKind::PrivatePeering ? 0 : 1;
  });
}

double PopStudyResult::improvable_traffic_fraction(double threshold_ms) const {
  double improvable = 0.0;
  double total = 0.0;
  for (const auto& s : series) {
    for (std::size_t w = 0; w < windows.size(); ++w) {
      total += s.volume[w];
      if (s.diff(w) >= threshold_ms) improvable += s.volume[w];
    }
  }
  return total > 0.0 ? improvable / total : 0.0;
}

}  // namespace bgpcmp::core
