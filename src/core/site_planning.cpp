#include "bgpcmp/core/site_planning.h"

#include <algorithm>

#include "bgpcmp/cdn/anycast_cdn.h"
#include "bgpcmp/netbase/geo.h"
#include "bgpcmp/stats/correlation.h"
#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

namespace {

/// Deterministic (noise-free) anycast RTT per client; -1 if unreachable.
std::vector<double> anycast_rtts(const Scenario& scenario, const cdn::AnycastCdn& cdn,
                                 SimTime t) {
  std::vector<double> out(scenario.clients.size(), -1.0);
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    const auto& client = scenario.clients.at(id);
    const auto route = cdn.anycast_route(client);
    if (!route.valid()) continue;
    out[id] = scenario.latency
                  .rtt(route.path, t, client.access, client.origin_as, client.city)
                  .total()
                  .value();
  }
  return out;
}

double weighted_mean_diff(const Scenario& scenario, const std::vector<double>& before,
                          const std::vector<double>& after) {
  double sum = 0.0;
  double weight = 0.0;
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    if (before[id] < 0.0 || after[id] < 0.0) continue;
    const double w = scenario.clients.at(id).user_weight;
    sum += (before[id] - after[id]) * w;
    weight += w;
  }
  return weight > 0.0 ? sum / weight : 0.0;
}

}  // namespace

SitePlanningResult run_site_planning(const ScenarioConfig& base,
                                     const SitePlanningConfig& config,
                                     std::span<const std::size_t> density_pop_counts) {
  SitePlanningResult result;

  // ---- Density sweep -----------------------------------------------------
  for (const std::size_t pops : density_pop_counts) {
    ScenarioConfig cfg = base;
    cfg.provider.pop_count = pops;
    auto scenario = Scenario::make(cfg);
    cdn::AnycastCdn cdn{&scenario->internet, &scenario->provider};
    const auto& db = scenario->internet.city_db();

    std::vector<stats::Weighted> gaps;
    std::vector<stats::Weighted> distances;
    for (traffic::PrefixId id = 0; id < scenario->clients.size(); ++id) {
      const auto& client = scenario->clients.at(id);
      const auto route = cdn.anycast_route(client);
      if (!route.valid()) continue;
      const double any = scenario->latency
                             .rtt(route.path, config.measure_time, client.access,
                                  client.origin_as, client.city)
                             .total()
                             .value();
      double best = any;
      for (const auto pop : cdn.nearby_front_ends(client, 6)) {
        const auto path = cdn.unicast_route(client, pop);
        if (!path.valid()) continue;
        best = std::min(best, scenario->latency
                                  .rtt(path, config.measure_time, client.access,
                                       client.origin_as, client.city)
                                  .total()
                                  .value());
      }
      gaps.push_back(stats::Weighted{any - best, client.user_weight});
      distances.push_back(stats::Weighted{
          db.distance(scenario->provider.pop(route.pop).city, client.city).value(),
          client.user_weight});
    }
    DensityPoint point;
    point.pop_count = pops;
    if (!gaps.empty()) {
      point.median_gap_ms = stats::weighted_quantile(gaps, 0.5);
      point.p90_gap_ms = stats::weighted_quantile(gaps, 0.9);
      point.median_catchment_km = stats::weighted_quantile(distances, 0.5);
    }
    result.density.push_back(point);
  }

  // ---- Site-addition ablation ---------------------------------------------
  auto base_scenario = Scenario::make(base);
  cdn::AnycastCdn base_cdn{&base_scenario->internet, &base_scenario->provider};
  const auto& db = base_scenario->internet.city_db();
  const auto before = anycast_rtts(*base_scenario, base_cdn, config.measure_time);

  // Candidates: heaviest metros without a PoP.
  std::vector<topo::CityId> candidates;
  {
    std::vector<topo::CityId> all;
    for (topo::CityId c = 0; c < db.size(); ++c) {
      if (!base_scenario->provider.pop_in(c)) all.push_back(c);
    }
    std::sort(all.begin(), all.end(), [&](topo::CityId a, topo::CityId b) {
      if (db.at(a).user_weight != db.at(b).user_weight) {
        return db.at(a).user_weight > db.at(b).user_weight;
      }
      return a < b;
    });
    all.resize(std::min(all.size(), config.candidate_count));
    candidates = std::move(all);
  }

  std::vector<double> predicted;
  std::vector<double> actual;
  for (const topo::CityId candidate : candidates) {
    SiteAdditionRow row;
    row.candidate = candidate;

    // Prediction: pure geometry — clients now nearer to a front-end gain the
    // distance-floor difference.
    double pred_sum = 0.0;
    double pred_weight = 0.0;
    for (traffic::PrefixId id = 0; id < base_scenario->clients.size(); ++id) {
      const auto& client = base_scenario->clients.at(id);
      const auto nearest =
          base_scenario->provider.nearest_pop(db, client.city);
      const double old_km =
          db.distance(base_scenario->provider.pop(nearest).city, client.city).value();
      const double new_km = db.distance(candidate, client.city).value();
      if (new_km < old_km) {
        pred_sum += (rtt_floor(Kilometers{old_km}) - rtt_floor(Kilometers{new_km}))
                        .value() *
                    client.user_weight;
      }
      pred_weight += client.user_weight;
    }
    row.predicted_improvement_ms = pred_weight > 0.0 ? pred_sum / pred_weight : 0.0;

    // Actual: rebuild the provider with the candidate appended; everything
    // else (Internet, per-AS peering decisions) stays put.
    ScenarioConfig cfg = base;
    cfg.provider.extra_pop_cities.push_back(db.at(candidate).name);
    auto scenario = Scenario::make(cfg);
    cdn::AnycastCdn cdn{&scenario->internet, &scenario->provider};
    const auto after = anycast_rtts(*scenario, cdn, config.measure_time);
    row.actual_improvement_ms = weighted_mean_diff(*scenario, before, after);

    const auto new_pop = scenario->provider.pop_in(candidate);
    double shifted = 0.0;
    double total = 0.0;
    for (traffic::PrefixId id = 0; id < scenario->clients.size(); ++id) {
      const auto& client = scenario->clients.at(id);
      total += client.user_weight;
      const auto route = cdn.anycast_route(client);
      if (route.valid() && new_pop && route.pop == *new_pop) {
        shifted += client.user_weight;
      }
    }
    row.catchment_shift = total > 0.0 ? shifted / total : 0.0;

    predicted.push_back(row.predicted_improvement_ms);
    actual.push_back(row.actual_improvement_ms);
    result.additions.push_back(row);
  }

  result.prediction_correlation = stats::pearson(predicted, actual);
  return result;
}

}  // namespace bgpcmp::core
