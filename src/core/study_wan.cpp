#include "bgpcmp/core/study_wan.h"

#include <algorithm>
#include <map>

#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

WanStudyResult run_wan_study(const Scenario& scenario, const wan::CloudTiers& tiers,
                             const WanStudyConfig& config) {
  WanStudyResult result;
  const topo::CityDb& db = scenario.internet.city_db();

  measure::VantageFleet fleet{&scenario.clients, config.fleet};
  measure::Campaign campaign{&tiers, &scenario.latency, &fleet, &scenario.clients,
                             config.campaign};
  Rng rng = Rng{config.seed}.fork("campaign");
  const auto samples = campaign.run(rng);
  result.total_samples = samples.size();

  std::size_t premium_near = 0;
  std::size_t standard_near = 0;
  std::map<std::string, std::vector<double>> per_country;
  for (const auto& s : samples) {
    if (s.premium_ingress_km <= config.ingress_near_km) ++premium_near;
    if (s.standard_ingress_km <= config.ingress_near_km) ++standard_near;

    // The paper's vantage filter: Premium enters the cloud directly from the
    // vantage's AS; Standard crosses at least one intermediate AS.
    if (!s.premium_direct || s.standard_intermediates < 1) continue;
    ++result.filtered_samples;
    const auto& client = scenario.clients.at(s.client);
    per_country[std::string(db.at(client.city).country)].push_back(
        s.standard.value() - s.premium.value());
  }
  if (!samples.empty()) {
    result.premium_ingress_near_fraction =
        static_cast<double>(premium_near) / static_cast<double>(samples.size());
    result.standard_ingress_near_fraction =
        static_cast<double>(standard_near) / static_cast<double>(samples.size());
  }

  for (auto& [country, diffs] : per_country) {
    if (diffs.size() < config.min_country_samples) continue;
    CountryRow row;
    row.country = country;
    row.median_diff_ms = stats::median(diffs);
    row.samples = diffs.size();
    // Region of the country's first metro.
    for (const auto& city : db.all()) {
      if (city.country == country) {
        row.region = city.region;
        break;
      }
    }
    result.countries.push_back(std::move(row));
  }
  std::sort(result.countries.begin(), result.countries.end(),
            [](const CountryRow& a, const CountryRow& b) {
              if (a.median_diff_ms != b.median_diff_ms) {
                return a.median_diff_ms > b.median_diff_ms;
              }
              return a.country < b.country;
            });
  return result;
}

double WanStudyResult::country_diff(std::string_view country, bool& found) const {
  for (const auto& row : countries) {
    if (row.country == country) {
      found = true;
      return row.median_diff_ms;
    }
  }
  found = false;
  return 0.0;
}

}  // namespace bgpcmp::core
