#include "bgpcmp/core/grooming_study.h"

#include <string>

#include "bgpcmp/stats/cdf.h"

namespace bgpcmp::core {

AnycastQuality measure_anycast_quality(const Scenario& scenario,
                                       const cdn::AnycastCdn& cdn,
                                       const GroomingStudyConfig& config) {
  cdn::OdinBeacons beacons{&cdn, &scenario.latency, &scenario.clients, config.odin};
  Rng root{config.seed};
  Rng rng = root.fork("quality");

  std::vector<double> weights;
  weights.reserve(scenario.clients.size());
  for (traffic::PrefixId id = 0; id < scenario.clients.size(); ++id) {
    weights.push_back(scenario.clients.at(id).user_weight);
  }

  stats::WeightedCdf gaps;
  double gap_sum = 0.0;
  double weight_sum = 0.0;
  for (int i = 0; i < config.sample_clients; ++i) {
    const auto id = static_cast<traffic::PrefixId>(rng.weighted_index(weights));
    cdn::BeaconResult r;
    if (!beacons.measure(id, config.measure_time, rng, r)) continue;
    const double gap = r.anycast.value() - r.best_unicast().value();
    const double w = scenario.clients.at(id).user_weight;
    gaps.add(gap, w);
    gap_sum += gap * w;
    weight_sum += w;
  }

  AnycastQuality q;
  if (!gaps.empty()) {
    q.mean_gap_ms = weight_sum > 0.0 ? gap_sum / weight_sum : 0.0;
    q.median_gap_ms = gaps.quantile(0.5);
    q.frac_within_10ms = gaps.fraction_at_most(10.0);
    q.frac_tail_50ms = gaps.fraction_above(50.0);
  }
  return q;
}

GroomingStudyResult run_grooming_study(const ScenarioConfig& base,
                                       const GroomingStudyConfig& config,
                                       std::span<const std::size_t> pop_counts) {
  GroomingStudyResult result;
  for (const std::size_t pops : pop_counts) {
    ScenarioConfig cfg = base;
    cfg.provider.pop_count = pops;
    auto scenario = Scenario::make(cfg);
    cdn::AnycastCdn cdn{&scenario->internet, &scenario->provider};

    GroomingDensityRow row;
    row.pop_count = pops;
    row.ungroomed = measure_anycast_quality(*scenario, cdn, config);

    cdn::AnycastGroomer groomer{&cdn, &scenario->latency, &scenario->clients,
                                config.grooming};
    const auto report = groomer.groom();
    row.grooming_steps = static_cast<int>(report.steps.size());
    row.gap_by_iteration = report.mean_gap_by_iteration;
    row.groomed = measure_anycast_quality(*scenario, cdn, config);
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace bgpcmp::core
