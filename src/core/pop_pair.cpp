#include "bgpcmp/core/pop_pair.h"

#include <algorithm>
#include <string>

#include "bgpcmp/cdn/edge_fabric.h"
#include "bgpcmp/stats/quantile.h"
#include "bgpcmp/traffic/demand.h"
#include "bgpcmp/traffic/sessions.h"

namespace bgpcmp::core {

namespace {

float median_of(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return static_cast<float>(stats::quantile_sorted(samples, 0.5));
}

}  // namespace

PairPlan plan_pop_pair(const topo::AsGraph& graph, const topo::CityDb& db,
                       const cdn::ContentProvider& provider,
                       const traffic::ClientPrefix& client, traffic::PrefixId prefix,
                       const bgp::RouteTable& table, int top_k) {
  const cdn::PopId pop = provider.serving_pop(graph, db, client.origin_as, client.city);
  auto options =
      cdn::edge_fabric::rank_by_policy(graph, provider.egress_options(graph, table, pop));
  PairPlan plan;
  if (options.size() < 2) return plan;
  if (options.size() > static_cast<std::size_t>(top_k)) {
    options.resize(static_cast<std::size_t>(top_k));
  }
  plan.pop = pop;
  plan.prefix = prefix;
  for (const auto& opt : options) {
    auto path = cdn::edge_fabric::egress_path(graph, db, provider.as_index(),
                                              provider.pop(pop), opt, client.city);
    if (!path.valid()) continue;
    EgressRouteInfo info;
    info.neighbor = opt.route.neighbor;
    info.role = opt.route.neighbor_role;
    info.kind = opt.kind;
    info.link = opt.link;
    info.as_path_len = opt.route.length;
    plan.routes.push_back(info);
    plan.paths.push_back(std::move(path));
  }
  if (plan.routes.size() < 2) plan.routes.clear();
  return plan;
}

PopPrefixSeries measure_pop_pair(const PairPlan& plan,
                                 const traffic::ClientPrefix& client,
                                 const std::vector<TimeWindow>& windows,
                                 double popularity, double lon_deg,
                                 const traffic::DemandConfig& demand,
                                 const lat::LatencyModel& latency,
                                 const lat::RttSampler& sampler, const Rng& root,
                                 const PopStudyConfig& config) {
  Rng rng = root.fork("pair-" + std::to_string(plan.prefix) + "-" +
                      std::to_string(plan.pop));
  PopPrefixSeries series;
  series.pop = plan.pop;
  series.prefix = plan.prefix;
  series.routes = plan.routes;
  const std::size_t n_routes = plan.routes.size();
  const std::size_t n_windows = windows.size();
  series.volume.resize(n_windows);
  series.medians.assign(n_routes, std::vector<float>(n_windows));
  series.ci_lower.resize(n_windows);
  series.ci_upper.resize(n_windows);

  std::vector<std::vector<double>> route_samples(n_routes);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const SimTime t = windows[w].midpoint();
    series.volume[w] =
        static_cast<float>(traffic::diurnal_volume(demand, popularity, lon_deg, t).value());
    const int n_sessions = traffic::sample_session_count(config.sessions, popularity, rng);
    for (std::size_t r = 0; r < n_routes; ++r) {
      const auto base =
          latency.rtt(plan.paths[r], t, client.access, client.origin_as, client.city)
              .total();
      auto& samples = route_samples[r];
      samples.clear();
      for (int s = 0; s < n_sessions; ++s) {
        const int rts = traffic::sample_round_trips(config.sessions, rng);
        samples.push_back(sampler.sample_min_rtt(base, rts, rng).value());
      }
      series.medians[r][w] = median_of(samples);
    }
    // CI of (BGP - best alternate) from the sprayed samples.
    std::size_t best_alt = 1;
    for (std::size_t r = 2; r < n_routes; ++r) {
      if (series.medians[r][w] < series.medians[best_alt][w]) best_alt = r;
    }
    const auto ci = stats::bootstrap_median_diff_ci(
        route_samples[0], route_samples[best_alt], rng, config.bootstrap);
    series.ci_lower[w] = static_cast<float>(ci.lower);
    series.ci_upper[w] = static_cast<float>(ci.upper);
  }
  return series;
}

}  // namespace bgpcmp::core
