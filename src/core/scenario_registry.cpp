#include "bgpcmp/core/scenario_registry.h"

#include <array>

namespace bgpcmp::core {
namespace {

ScenarioConfig master_seed_7() { return ScenarioConfig::with_master_seed(7); }
ScenarioConfig master_seed_456() { return ScenarioConfig::with_master_seed(456); }

ScenarioConfig topology_4x() {
  ScenarioConfig cfg;
  cfg.internet.tier1_count *= 4;
  cfg.internet.transit_count *= 4;
  cfg.internet.eyeball_count *= 4;
  cfg.internet.stub_count *= 4;
  return cfg;
}

ScenarioConfig churn_world() { return ScenarioConfig{}; }
ScenarioConfig serving_world() { return ScenarioConfig{}; }

constexpr std::array<RegisteredScenario, 8> kRegistry{{
    {"facebook_like", "Study 1: PNI-rich edge provider (default config)",
     &ScenarioConfig::facebook_like, /*fingerprint_studies=*/true},
    {"microsoft_like", "Study 2: 2015-era anycast CDN, sparse peering",
     &ScenarioConfig::microsoft_like, /*fingerprint_studies=*/true},
    {"google_like", "Study 3: hyperscale cloud with a large WAN edge",
     &ScenarioConfig::google_like, /*fingerprint_studies=*/true},
    {"master_seed_7", "seed-sweep world derived from master seed 7",
     &master_seed_7, /*fingerprint_studies=*/false},
    {"master_seed_456", "seed-sweep world derived from master seed 456",
     &master_seed_456, /*fingerprint_studies=*/false},
    {"topology_4x", "4x-scale world, topology generation only",
     &topology_4x, /*fingerprint_studies=*/false, /*topology_only=*/true},
    {"churn_default", "event waves through the incremental re-convergence path",
     &churn_world, /*fingerprint_studies=*/false, /*topology_only=*/false,
     /*churn=*/true},
    {"serving_default", "snapshot round-trip and batched queries, fresh vs loaded",
     &serving_world, /*fingerprint_studies=*/false, /*topology_only=*/false,
     /*churn=*/false, /*serving=*/true},
}};

}  // namespace

std::span<const RegisteredScenario> scenario_registry() { return kRegistry; }

const RegisteredScenario* find_scenario(std::string_view name) {
  for (const auto& s : kRegistry) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace bgpcmp::core
