#include "bgpcmp/core/degrade.h"

#include <algorithm>
#include <vector>

#include "bgpcmp/stats/quantile.h"

namespace bgpcmp::core {

DegradeResult analyze_degrade(const PopStudyResult& study,
                              const DegradeConfig& config) {
  DegradeResult out;
  const std::size_t n_windows = study.windows.size();
  if (n_windows == 0) return out;

  double total_traffic = 0.0;
  std::size_t degraded_windows = 0;
  std::size_t degraded_together = 0;
  std::size_t improvement_windows = 0;
  std::size_t total_pair_windows = 0;

  double improvable_mass = 0.0;
  double persistent_mass = 0.0;
  std::vector<double> scratch;
  for (const auto& s : study.series) {
    ++out.pairs;
    // Per-route baseline: a low quantile of its own series (uncongested floor).
    std::vector<float> baseline(s.routes.size());
    for (std::size_t r = 0; r < s.routes.size(); ++r) {
      scratch.assign(s.medians[r].begin(), s.medians[r].end());
      std::sort(scratch.begin(), scratch.end());
      baseline[r] =
          static_cast<float>(stats::quantile_sorted(scratch, config.baseline_quantile));
    }

    double pair_traffic = 0.0;
    double pair_improvable_mass = 0.0;
    std::size_t improvable = 0;
    for (std::size_t w = 0; w < n_windows; ++w) {
      pair_traffic += s.volume[w];
      ++total_pair_windows;

      if (s.diff(w) >= config.improve_threshold_ms) {
        ++improvable;
        ++improvement_windows;
        pair_improvable_mass += s.volume[w];
      }

      const bool bgp_degraded =
          s.medians[0][w] > baseline[0] + config.degrade_threshold_ms;
      if (bgp_degraded) {
        ++degraded_windows;
        bool all_degraded = true;
        for (std::size_t r = 1; r < s.routes.size(); ++r) {
          if (s.medians[r][w] <= baseline[r] + config.degrade_threshold_ms) {
            all_degraded = false;
            break;
          }
        }
        if (all_degraded) ++degraded_together;
      }
    }

    total_traffic += pair_traffic;
    const double improvable_frac =
        static_cast<double>(improvable) / static_cast<double>(n_windows);
    if (improvable == 0) {
      out.traffic_no_opportunity += pair_traffic;
    } else if (improvable_frac >= config.persistent_fraction) {
      out.traffic_persistent += pair_traffic;
      persistent_mass += pair_improvable_mass;
    } else {
      out.traffic_transient += pair_traffic;
    }
    improvable_mass += pair_improvable_mass;
  }

  if (total_traffic > 0.0) {
    out.traffic_no_opportunity /= total_traffic;
    out.traffic_persistent /= total_traffic;
    out.traffic_transient /= total_traffic;
  }
  if (total_pair_windows > 0) {
    out.degraded_window_fraction = static_cast<double>(degraded_windows) /
                                   static_cast<double>(total_pair_windows);
    out.improvement_window_fraction = static_cast<double>(improvement_windows) /
                                      static_cast<double>(total_pair_windows);
  }
  if (improvable_mass > 0.0) {
    out.improvement_mass_persistent = persistent_mass / improvable_mass;
  }
  if (degraded_windows > 0) {
    out.degrade_together_fraction = static_cast<double>(degraded_together) /
                                    static_cast<double>(degraded_windows);
  }
  return out;
}

}  // namespace bgpcmp::core
