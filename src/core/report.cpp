#include "bgpcmp/core/report.h"

#include "bgpcmp/netbase/check.h"
#include "bgpcmp/stats/table.h"

namespace bgpcmp::core {

std::string render_cdfs(const std::string& x_label,
                        const std::vector<std::string>& names,
                        const std::vector<const stats::WeightedCdf*>& cdfs, double lo,
                        double hi, std::size_t points, bool ccdf) {
  BGPCMP_CHECK_EQ(names.size(), cdfs.size(), "one name per CDF");
  std::vector<std::vector<stats::SeriesPoint>> series;
  series.reserve(cdfs.size());
  for (const auto* cdf : cdfs) {
    series.push_back(ccdf ? cdf->ccdf_series(lo, hi, points)
                          : cdf->cdf_series(lo, hi, points));
  }
  return stats::render_series(x_label, names, series);
}

std::string headline(const std::string& key, double value, const std::string& unit,
                     int precision) {
  std::string out = key;
  if (out.size() < 52) out.append(52 - out.size(), ' ');
  out += " = " + stats::fmt(value, precision);
  if (!unit.empty()) out += " " + unit;
  return out + "\n";
}

std::string banner(const std::string& title) {
  std::string rule(title.size() + 4, '=');
  return rule + "\n| " + title + " |\n" + rule + "\n";
}

}  // namespace bgpcmp::core
