#include "bgpcmp/wan/tiers.h"

#include "bgpcmp/exec/thread_pool.h"
#include "bgpcmp/netbase/check.h"

namespace bgpcmp::wan {

namespace {

std::vector<CityId> pop_cities(const ContentProvider& provider) {
  std::vector<CityId> out;
  out.reserve(provider.pops().size());
  for (const auto& p : provider.pops()) out.push_back(p.city);
  return out;
}

}  // namespace

CloudTiers::CloudTiers(const Internet* internet, const ContentProvider* provider,
                       const CloudTiersConfig& config)
    : internet_(internet),
      provider_(provider),
      backbone_(internet->cities, pop_cities(*provider), config.backbone) {
  const auto dc_metro = internet_->city_db().find(config.dc_city);
  BGPCMP_CHECK(dc_metro, "dc_city must exist in the city database");
  dc_pop_ = provider_->nearest_pop(internet_->city_db(), *dc_metro);
  dc_city_ = provider_->pop(dc_pop_).city;

  premium_spec_ = bgp::OriginSpec::everywhere(provider_->as_index());
  standard_spec_ =
      bgp::OriginSpec::scoped(provider_->as_index(), provider_->pop(dc_pop_).links);
  // The two tier tables are independent: build the CSR index once up front,
  // then compute them across the pool (index-addressed, so byte-identical at
  // any width — see docs/PARALLELISM.md warm-then-plan).
  internet_->graph.edge_index();
  auto built = exec::parallel_map(2, [&](std::size_t i) {
    return bgp::compute_routes(internet_->graph,
                               i == 0 ? premium_spec_ : standard_spec_);
  });
  premium_table_ = std::move(built[0]);
  standard_table_ = std::move(built[1]);
}

TierRoute CloudTiers::realize(const bgp::RouteTable& table,
                              const bgp::OriginSpec& spec,
                              const traffic::ClientPrefix& client,
                              bool backhaul_on_wan) const {
  TierRoute out;
  if (!table.reachable(client.origin_as)) return out;
  const auto as_path = table.path(client.origin_as);
  lat::GeoPathOptions opts;
  opts.origin_scope = &spec;
  // The access path terminates where traffic enters the cloud network.
  out.access_path = lat::build_geo_path(internet_->graph, internet_->city_db(),
                                        as_path, client.city, topo::kNoCity, opts);
  if (!out.access_path.valid()) return out;

  const auto entry_pop = provider_->pop_in(out.access_path.entry_city);
  BGPCMP_CHECK(entry_pop, "cloud entry must land at a PoP");
  out.entry_pop = *entry_pop;
  out.intermediate_ases = static_cast<int>(as_path.size()) - 2;
  out.direct_entry = out.intermediate_ases == 0;

  if (backhaul_on_wan) {
    const auto wan = backbone_.transit_time(out.access_path.entry_city, dc_city_);
    if (!wan) return TierRoute{};  // edge site unreachable: no premium service
    out.wan_rtt = *wan * 2.0;
  } else {
    // Standard tier enters at the DC PoP itself; no WAN leg.
    BGPCMP_CHECK_EQ(out.access_path.entry_city, dc_city_,
                    "standard-tier access path must enter at the DC city");
  }
  return out;
}

TierRoute CloudTiers::premium(const traffic::ClientPrefix& client) const {
  return realize(*premium_table_, premium_spec_, client, /*backhaul_on_wan=*/true);
}

TierRoute CloudTiers::standard(const traffic::ClientPrefix& client) const {
  return realize(*standard_table_, standard_spec_, client, /*backhaul_on_wan=*/false);
}

Milliseconds CloudTiers::rtt(const TierRoute& route, const lat::LatencyModel& latency,
                             SimTime t, const traffic::ClientPrefix& client) const {
  BGPCMP_CHECK(route.valid(), "cannot compute the RTT of an invalid tier route");
  const auto access =
      latency.rtt(route.access_path, t, client.access, client.origin_as, client.city);
  return access.total() + route.wan_rtt;
}

Kilometers CloudTiers::ingress_distance(const TierRoute& route,
                                        const traffic::ClientPrefix& client) const {
  BGPCMP_CHECK(route.valid(),
               "cannot measure ingress distance of an invalid tier route");
  return internet_->city_db().distance(client.city, route.access_path.entry_city);
}

}  // namespace bgpcmp::wan
