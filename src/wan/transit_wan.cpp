#include "bgpcmp/wan/transit_wan.h"

#include <map>

namespace bgpcmp::wan {

std::map<topo::AsIndex, lat::ExitStrategy> exit_override_for_class(
    const topo::AsGraph& graph, topo::AsClass cls, lat::ExitStrategy strategy) {
  std::map<topo::AsIndex, lat::ExitStrategy> out;
  for (topo::AsIndex i = 0; i < graph.as_count(); ++i) {
    if (graph.node(i).cls == cls) out[i] = strategy;
  }
  return out;
}

double largest_single_network_fraction(const lat::GeoPath& path) {
  const double total = path.inflated_distance().value();
  if (total <= 0.0) return 1.0;  // zero-length path is trivially single-network
  std::map<topo::AsIndex, double> per_as;
  for (const auto& seg : path.segments) {
    per_as[seg.as] += seg.geo.value() * seg.inflation;
  }
  double largest = 0.0;
  for (const auto& [as, km] : per_as) largest = std::max(largest, km);
  return largest / total;
}

}  // namespace bgpcmp::wan
