// Private WAN backbone with explicit cable geography.
//
// Inside the AS graph, intra-AS travel is approximated as inflated geodesics;
// that is fine for transit networks but wrong for the question Fig 5 asks,
// because a cloud WAN's reach follows its actual fiber: Google's WAN carried
// India traffic *east* across the Pacific while Tier-1s carried it west via
// Europe (§3.3.2). The backbone is therefore a real graph: nodes are WAN edge
// sites, links follow a configurable catalog of long-haul corridors
// (submarine cable systems), and transit time is shortest-path over it.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "bgpcmp/netbase/units.h"
#include "bgpcmp/topology/city.h"

namespace bgpcmp::wan {

using topo::CityDb;
using topo::CityId;

/// One long-haul corridor between two metros (by city name).
struct Corridor {
  std::string_view a;
  std::string_view b;
};

struct BackboneConfig {
  /// Within a region, each site links to its `intra_region_neighbors` nearest
  /// sites (terrestrial fiber is dense).
  std::size_t intra_region_neighbors = 3;
  /// A catalog corridor is realized if both endpoints have a site within this
  /// distance (same region as the endpoint).
  double corridor_attach_km = 2500.0;
  /// Fiber route vs geodesic inflation on backbone segments.
  double inflation = 1.08;
};

/// The default corridor catalog: a coarse map of today's intercontinental
/// cable systems. Deliberately contains NO Europe<->South-Asia corridor —
/// this cloud WAN reaches India via Singapore, reproducing the case study
/// where the public Internet (via Europe) beats the private WAN for India.
[[nodiscard]] std::vector<Corridor> default_corridors();

class Backbone {
 public:
  /// Build over the given sites. Sites in the same region are meshed to
  /// nearest neighbors; catalog corridors bridge regions.
  Backbone(const CityDb* cities, std::vector<CityId> sites,
           const BackboneConfig& config = {},
           const std::vector<Corridor>& corridors = default_corridors());

  [[nodiscard]] std::span<const CityId> sites() const { return sites_; }
  [[nodiscard]] bool has_site(CityId city) const;

  /// One-way transit time between two sites over the backbone; nullopt if
  /// either city is not a site or they are disconnected.
  [[nodiscard]] std::optional<Milliseconds> transit_time(CityId from, CityId to) const;

  /// The site sequence of the shortest path (empty if disconnected).
  [[nodiscard]] std::vector<CityId> route(CityId from, CityId to) const;

  /// Total one-way fiber distance of the shortest path.
  [[nodiscard]] std::optional<Kilometers> transit_distance(CityId from,
                                                           CityId to) const;

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

 private:
  struct BbLink {
    std::size_t a;
    std::size_t b;
    double km;
  };

  [[nodiscard]] std::optional<std::size_t> site_index(CityId city) const;
  void add_link(std::size_t a, std::size_t b);
  /// Dijkstra from a site; returns per-site distance (km) and predecessor.
  void shortest(std::size_t from, std::vector<double>& dist,
                std::vector<std::size_t>& prev) const;

  const CityDb* cities_;
  std::vector<CityId> sites_;
  std::vector<BbLink> links_;
  std::vector<std::vector<std::pair<std::size_t, double>>> adj_;  // (site, km)
  BackboneConfig config_;
};

}  // namespace bgpcmp::wan
