// Two-tier cloud networking (§2.3.3): Premium rides the private WAN from an
// edge PoP near the client to the data center; Standard is announced only
// near the data center and rides the public Internet the rest of the way.
#pragma once

#include <optional>

#include "bgpcmp/bgp/propagation.h"
#include "bgpcmp/cdn/provider.h"
#include "bgpcmp/latency/delay.h"
#include "bgpcmp/netbase/thread_annotations.h"
#include "bgpcmp/traffic/clients.h"
#include "bgpcmp/wan/backbone.h"

namespace bgpcmp::wan {

using cdn::ContentProvider;
using cdn::PopId;
using topo::Internet;

struct CloudTiersConfig {
  /// Metro hosting the data center (the paper's US-Central region; Kansas
  /// City is the nearest metro in the city database).
  std::string_view dc_city = "Kansas City";
  BackboneConfig backbone;
};

/// One tier's route for one client.
struct TierRoute {
  lat::GeoPath access_path;        ///< client -> cloud ingress (public Internet)
  Milliseconds wan_rtt{0.0};       ///< round-trip time spent on the private WAN
  PopId entry_pop = cdn::kNoPop;   ///< where traffic enters the cloud
  int intermediate_ases = 0;       ///< ASes between the client AS and the cloud
  bool direct_entry = false;       ///< client AS peers directly with the cloud

  [[nodiscard]] bool valid() const { return access_path.valid(); }
};

class CloudTiers {
 public:
  /// `internet`/`provider` must outlive this object. The provider's PoPs act
  /// as WAN edge sites; the PoP nearest `dc_city` hosts the data center.
  /// The constructor is the warm step: both tier route tables are computed
  /// here (over the pool), so a constructed CloudTiers serves read-only.
  BGPCMP_PHASE(warm)
  CloudTiers(const Internet* internet, const ContentProvider* provider,
             const CloudTiersConfig& config = {});

  [[nodiscard]] CityId dc_city() const { return dc_city_; }
  [[nodiscard]] PopId dc_pop() const { return dc_pop_; }
  [[nodiscard]] const Backbone& backbone() const { return backbone_; }

  // Raw routing state, for analyses that re-realize paths under different
  // exit strategies (single-WAN hypothesis, E9).
  [[nodiscard]] const bgp::RouteTable& premium_table() const { return *premium_table_; }
  [[nodiscard]] const bgp::RouteTable& standard_table() const { return *standard_table_; }
  [[nodiscard]] const bgp::OriginSpec& premium_spec() const { return premium_spec_; }
  [[nodiscard]] const bgp::OriginSpec& standard_spec() const { return standard_spec_; }

  /// Premium: BGP anycast to the nearest edge announcement, then the WAN.
  /// Serve-phase; warmed by the constructor (BGPCMP_REQUIRES_WARMED naming a
  /// class means "construction is the warm step" — constructor discharge).
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(CloudTiers)
  [[nodiscard]] TierRoute premium(const traffic::ClientPrefix& client) const;
  /// Standard: BGP toward an announcement scoped to the DC PoP's sessions.
  BGPCMP_PHASE(serve)
  BGPCMP_REQUIRES_WARMED(CloudTiers)
  [[nodiscard]] TierRoute standard(const traffic::ClientPrefix& client) const;

  /// Full model RTT of a tier route (access path + WAN backhaul).
  [[nodiscard]] Milliseconds rtt(const TierRoute& route,
                                 const lat::LatencyModel& latency, SimTime t,
                                 const traffic::ClientPrefix& client) const;

  /// Distance from the client to where the traffic enters the cloud network —
  /// the paper's "traceroutes enter Google's network within 400 km" statistic.
  [[nodiscard]] Kilometers ingress_distance(const TierRoute& route,
                                            const traffic::ClientPrefix& client) const;

 private:
  [[nodiscard]] TierRoute realize(const bgp::RouteTable& table,
                                  const bgp::OriginSpec& spec,
                                  const traffic::ClientPrefix& client,
                                  bool backhaul_on_wan) const;

  const Internet* internet_;
  const ContentProvider* provider_;
  CityId dc_city_ = topo::kNoCity;
  PopId dc_pop_ = cdn::kNoPop;
  Backbone backbone_;
  bgp::OriginSpec premium_spec_;
  bgp::OriginSpec standard_spec_;
  std::optional<bgp::RouteTable> premium_table_;
  std::optional<bgp::RouteTable> standard_table_;
};

}  // namespace bgpcmp::wan
