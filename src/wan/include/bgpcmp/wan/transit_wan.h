// Transit-WAN behaviour toggles for the single-WAN hypothesis (§3.3.2, E9).
//
// "Do the Tier-1 networks use late-exit routing for Google but early-exit
// routing for others?" — these helpers build the exit-strategy override maps
// that switch a class of ASes between hot-potato (early exit) and cold-potato
// (late exit) when geo paths are realized.
#pragma once

#include <map>

#include "bgpcmp/latency/path_model.h"
#include "bgpcmp/topology/as_graph.h"

namespace bgpcmp::wan {

/// Exit override for every AS of a class.
[[nodiscard]] std::map<topo::AsIndex, lat::ExitStrategy> exit_override_for_class(
    const topo::AsGraph& graph, topo::AsClass cls, lat::ExitStrategy strategy);

/// Fraction of a realized path's one-way inflated distance spent inside its
/// single largest contributor AS — the paper's "fraction of the journey on a
/// single network".
[[nodiscard]] double largest_single_network_fraction(const lat::GeoPath& path);

}  // namespace bgpcmp::wan
