#include "bgpcmp/wan/backbone.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "bgpcmp/netbase/check.h"
#include "bgpcmp/netbase/geo.h"

namespace bgpcmp::wan {

std::vector<Corridor> default_corridors() {
  return {
      // Trans-Atlantic.
      {"New York", "London"},
      {"Washington DC", "Paris"},
      {"Boston", "Dublin"},
      {"Miami", "Lisbon"},
      // Trans-Pacific.
      {"Seattle", "Tokyo"},
      {"Los Angeles", "Tokyo"},
      {"San Francisco", "Osaka"},
      {"Los Angeles", "Sydney"},
      {"Seattle", "Seoul"},
      // Intra-Asia spine (reaches South Asia via Singapore only).
      {"Tokyo", "Seoul"},
      {"Tokyo", "Taipei"},
      {"Taipei", "Hong Kong"},
      {"Hong Kong", "Singapore"},
      {"Singapore", "Chennai"},
      {"Singapore", "Mumbai"},
      {"Singapore", "Jakarta"},
      {"Singapore", "Kuala Lumpur"},
      // Oceania.
      {"Sydney", "Singapore"},
      {"Sydney", "Auckland"},
      // Europe <-> Middle East (no onward corridor to South Asia).
      {"Frankfurt", "Dubai"},
      {"Marseille", "Cairo"},
      // Europe <-> Africa.
      {"London", "Lagos"},
      {"Lisbon", "Accra"},
      {"Marseille", "Johannesburg"},
      // Americas.
      {"Miami", "Fortaleza"},
      {"Miami", "Sao Paulo"},
      {"Miami", "Bogota"},
      {"Miami", "Panama City"},
      {"Sao Paulo", "Buenos Aires"},
  };
}

Backbone::Backbone(const CityDb* cities, std::vector<CityId> sites,
                   const BackboneConfig& config,
                   const std::vector<Corridor>& corridors)
    : cities_(cities), sites_(std::move(sites)), config_(config) {
  BGPCMP_CHECK(!sites_.empty(), "backbone has no sites");
  std::sort(sites_.begin(), sites_.end());
  sites_.erase(std::unique(sites_.begin(), sites_.end()), sites_.end());
  adj_.resize(sites_.size());

  // Intra-region nearest-neighbor mesh.
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    std::vector<std::pair<double, std::size_t>> near;
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      if (i == j) continue;
      if (cities_->at(sites_[i]).region != cities_->at(sites_[j]).region) continue;
      near.emplace_back(cities_->distance(sites_[i], sites_[j]).value(), j);
    }
    std::sort(near.begin(), near.end());
    const std::size_t k = std::min(config_.intra_region_neighbors, near.size());
    for (std::size_t n = 0; n < k; ++n) add_link(i, near[n].second);
  }

  // Catalog corridors: attach to the nearest site of the endpoint's region.
  auto nearest_site = [&](std::string_view name) -> std::optional<std::size_t> {
    const auto endpoint = cities_->find(name);
    if (!endpoint) return std::nullopt;
    std::optional<std::size_t> best;
    double best_km = config_.corridor_attach_km;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (cities_->at(sites_[i]).region != cities_->at(*endpoint).region) continue;
      const double km = cities_->distance(sites_[i], *endpoint).value();
      if (km <= best_km) {
        best_km = km;
        best = i;
      }
    }
    return best;
  };
  for (const Corridor& c : corridors) {
    const auto a = nearest_site(c.a);
    const auto b = nearest_site(c.b);
    if (a && b && *a != *b) add_link(*a, *b);
  }

  // Connectivity repair: a WAN with an unreachable edge site is not a WAN.
  // Repeatedly bridge the closest pair of sites across disconnected
  // components (the operator would lease exactly that capacity).
  for (;;) {
    std::vector<double> dist;
    std::vector<std::size_t> prev;
    shortest(0, dist, prev);
    std::size_t orphan = sites_.size();
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (dist[i] == std::numeric_limits<double>::max()) {
        orphan = i;
        break;
      }
    }
    if (orphan == sites_.size()) break;
    std::size_t best_in = 0;
    std::size_t best_out = orphan;
    double best_km = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (dist[i] == std::numeric_limits<double>::max()) continue;
      for (std::size_t j = 0; j < sites_.size(); ++j) {
        if (dist[j] != std::numeric_limits<double>::max()) continue;
        const double km = cities_->distance(sites_[i], sites_[j]).value();
        if (km < best_km) {
          best_km = km;
          best_in = i;
          best_out = j;
        }
      }
    }
    add_link(best_in, best_out);
  }
}

bool Backbone::has_site(CityId city) const { return site_index(city).has_value(); }

std::optional<std::size_t> Backbone::site_index(CityId city) const {
  const auto it = std::lower_bound(sites_.begin(), sites_.end(), city);
  if (it == sites_.end() || *it != city) return std::nullopt;
  return static_cast<std::size_t>(it - sites_.begin());
}

void Backbone::add_link(std::size_t a, std::size_t b) {
  BGPCMP_CHECK_LT(a, sites_.size(), "backbone site out of range");
  BGPCMP_CHECK_LT(b, sites_.size(), "backbone site out of range");
  BGPCMP_CHECK_NE(a, b, "backbone segment endpoints must differ");
  for (const auto& [other, km] : adj_[a]) {
    if (other == b) return;  // already linked
  }
  const double km = cities_->distance(sites_[a], sites_[b]).value();
  links_.push_back(BbLink{a, b, km});
  adj_[a].emplace_back(b, km);
  adj_[b].emplace_back(a, km);
}

void Backbone::shortest(std::size_t from, std::vector<double>& dist,
                        std::vector<std::size_t>& prev) const {
  constexpr double kInf = std::numeric_limits<double>::max();
  dist.assign(sites_.size(), kInf);
  prev.assign(sites_.size(), sites_.size());
  dist[from] = 0.0;
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, km] : adj_[u]) {
      const double nd = d + km;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
}

std::optional<Kilometers> Backbone::transit_distance(CityId from, CityId to) const {
  const auto a = site_index(from);
  const auto b = site_index(to);
  if (!a || !b) return std::nullopt;
  if (*a == *b) return Kilometers{0.0};
  std::vector<double> dist;
  std::vector<std::size_t> prev;
  shortest(*a, dist, prev);
  if (dist[*b] == std::numeric_limits<double>::max()) return std::nullopt;
  return Kilometers{dist[*b]};
}

std::optional<Milliseconds> Backbone::transit_time(CityId from, CityId to) const {
  const auto km = transit_distance(from, to);
  if (!km) return std::nullopt;
  return propagation_delay(*km, config_.inflation);
}

std::vector<CityId> Backbone::route(CityId from, CityId to) const {
  const auto a = site_index(from);
  const auto b = site_index(to);
  if (!a || !b) return {};
  std::vector<double> dist;
  std::vector<std::size_t> prev;
  shortest(*a, dist, prev);
  if (dist[*b] == std::numeric_limits<double>::max()) return {};
  std::vector<CityId> out;
  for (std::size_t cur = *b; cur != sites_.size(); cur = prev[cur]) {
    out.push_back(sites_[cur]);
    if (cur == *a) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace bgpcmp::wan
